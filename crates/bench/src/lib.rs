//! Shared plumbing for the `densekv-bench` binaries: where results go and
//! how tables are emitted.
//!
//! Every `bin/` target regenerates one table or figure of the paper (see
//! DESIGN.md's experiment index) and drops both the rendered text and a
//! CSV under `results/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::{Path, PathBuf};

use densekv::report::TextTable;

/// Directory (relative to the workspace root) where experiment output is
/// written.
pub const RESULTS_DIR: &str = "results";

/// Environment variable that redirects all emitted artifacts to another
/// directory. Used by tests to avoid clobbering the checked-in
/// `results/` files; leave it unset to reproduce the canonical
/// artifacts.
pub const RESULTS_DIR_ENV: &str = "DENSEKV_RESULTS_DIR";

/// Resolves the results directory, creating it if needed.
///
/// Honors [`RESULTS_DIR_ENV`] when set; otherwise defaults to
/// `results/` under the workspace root.
///
/// # Panics
///
/// Panics if the directory cannot be created.
#[must_use]
pub fn results_dir() -> PathBuf {
    if let Some(dir) = std::env::var_os(RESULTS_DIR_ENV).filter(|d| !d.is_empty()) {
        let dir = PathBuf::from(dir);
        std::fs::create_dir_all(&dir).expect("create results dir");
        return dir;
    }
    // The binaries run from the workspace root (`cargo run -p ...`), but
    // fall back to the manifest's parent if invoked elsewhere.
    let base = if Path::new("Cargo.toml").exists() {
        PathBuf::from(".")
    } else {
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
    };
    let dir = base.join(RESULTS_DIR);
    std::fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Prints a table and writes its CSV next to the other results.
///
/// # Panics
///
/// Panics if the CSV cannot be written.
pub fn emit(name: &str, table: &TextTable) {
    println!("{table}");
    let path = results_dir().join(format!("{name}.csv"));
    std::fs::write(&path, table.to_csv()).expect("write csv");
    eprintln!("[densekv-bench] wrote {}", path.display());
}

/// Writes a non-tabular artifact (trace JSON, timeline CSV, …) under
/// the results directory and logs where it went.
///
/// # Panics
///
/// Panics if the file cannot be written.
pub fn emit_raw(file_name: &str, contents: &str) {
    let path = results_dir().join(file_name);
    std::fs::write(&path, contents).expect("write artifact");
    eprintln!("[densekv-bench] wrote {}", path.display());
}

/// Picks the sweep effort: full by default, `DENSEKV_QUICK=1` for a fast
/// smoke run.
#[must_use]
pub fn effort() -> densekv::sweep::SweepEffort {
    if std::env::var("DENSEKV_QUICK").is_ok_and(|v| v != "0") {
        densekv::sweep::SweepEffort::quick()
    } else {
        densekv::sweep::SweepEffort::full()
    }
}

/// Picks the worker count for the run: `--jobs N` (or `--jobs=N`) from
/// the command line, else the `DENSEKV_JOBS` variable, else the
/// machine's available parallelism. Results are bit-identical at any
/// value — `--jobs` only changes wall-clock time.
///
/// # Panics
///
/// Panics with a usage message when `--jobs` is present without a
/// parseable positive count.
#[must_use]
pub fn jobs() -> densekv_par::Jobs {
    jobs_from(std::env::args().skip(1))
}

/// [`jobs`], but parsing an explicit argument list (testable).
pub fn jobs_from(args: impl IntoIterator<Item = String>) -> densekv_par::Jobs {
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        let value = if arg == "--jobs" {
            args.next()
        } else if let Some(v) = arg.strip_prefix("--jobs=") {
            Some(v.to_owned())
        } else {
            continue;
        };
        let n = value
            .as_deref()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| panic!("--jobs expects a positive worker count"));
        return densekv_par::Jobs::new(n);
    }
    densekv_par::Jobs::from_env()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_dir_exists_after_call() {
        let dir = results_dir();
        assert!(dir.is_dir());
    }

    #[test]
    fn effort_honors_env() {
        // Not setting the variable here (tests run in parallel); just
        // exercise the default path.
        let e = effort();
        assert!(e.measured > 0);
    }

    #[test]
    fn jobs_flag_parses_both_spellings() {
        let args = |v: &[&str]| v.iter().map(|s| (*s).to_owned()).collect::<Vec<_>>();
        assert_eq!(jobs_from(args(&["--jobs", "3"])).get(), 3);
        assert_eq!(jobs_from(args(&["--quiet", "--jobs=7"])).get(), 7);
        // No flag: falls through to the environment/machine default.
        assert!(jobs_from(args(&["--quiet"])).get() >= 1);
    }

    #[test]
    #[should_panic(expected = "positive worker count")]
    fn jobs_flag_rejects_garbage() {
        let _ = jobs_from(["--jobs".to_owned(), "zero".to_owned()]);
    }
}
