//! Micro-benchmarks of the key-value store substrate: GET/SET paths,
//! hashing, protocol parsing, and eviction pressure.

use std::time::Duration as StdBenchDuration;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::hint::black_box;

use densekv_kv::hash::jenkins_oaat;
use densekv_kv::protocol::{parse_command, Parsed};
use densekv_kv::store::{KvStore, StoreConfig};

fn bench_hash(c: &mut Criterion) {
    let mut group = c.benchmark_group("hash");
    for len in [16usize, 64, 250] {
        let key = vec![b'k'; len];
        group.throughput(Throughput::Bytes(len as u64));
        group.bench_function(format!("jenkins_oaat/{len}B"), |b| {
            b.iter(|| jenkins_oaat(black_box(&key)))
        });
    }
    group.finish();
}

fn bench_store_get(c: &mut Criterion) {
    let mut store = KvStore::new(StoreConfig::with_capacity(64 << 20));
    for i in 0..10_000u32 {
        store
            .set(format!("key:{i:08}").as_bytes(), vec![7; 100], None, 0)
            .expect("fits");
    }
    let mut group = c.benchmark_group("store");
    group.throughput(Throughput::Elements(1));
    let mut i = 0u32;
    group.bench_function("get_hit", |b| {
        b.iter(|| {
            i = (i + 1) % 10_000;
            let key = format!("key:{i:08}");
            black_box(store.get(key.as_bytes(), 0).is_some())
        })
    });
    group.bench_function("get_miss", |b| {
        b.iter(|| black_box(store.get(b"absent-key", 0).is_none()))
    });
    group.finish();
}

fn bench_store_set(c: &mut Criterion) {
    let mut group = c.benchmark_group("store");
    for size in [100usize, 4096] {
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_function(format!("set_overwrite/{size}B"), |b| {
            let mut store = KvStore::new(StoreConfig::with_capacity(64 << 20));
            let mut i = 0u32;
            b.iter(|| {
                i = (i + 1) % 1_000;
                let key = format!("key:{i:08}");
                store
                    .set(key.as_bytes(), vec![1; size], None, 0)
                    .expect("fits")
            })
        });
    }
    // Eviction pressure: arena far smaller than the write stream.
    group.bench_function("set_with_eviction/64KB", |b| {
        let mut store = KvStore::new(StoreConfig::with_capacity(4 << 20));
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let key = format!("key:{i:012}");
            store
                .set(key.as_bytes(), vec![1; 64 << 10], None, 0)
                .expect("evicts to fit")
        })
    });
    group.finish();
}

fn bench_protocol(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol");
    let get_line = b"get some:reasonable:key\r\n".to_vec();
    group.bench_function("parse_get", |b| {
        b.iter_batched(
            || bytes::BytesMut::from(&get_line[..]),
            |mut buf| matches!(parse_command(&mut buf), Ok(Parsed::Complete(_))),
            BatchSize::SmallInput,
        )
    });
    let set_msg = {
        let mut m = b"set k 0 0 100\r\n".to_vec();
        m.extend_from_slice(&[b'x'; 100]);
        m.extend_from_slice(b"\r\n");
        m
    };
    group.bench_function("parse_set_100B", |b| {
        b.iter_batched(
            || bytes::BytesMut::from(&set_msg[..]),
            |mut buf| matches!(parse_command(&mut buf), Ok(Parsed::Complete(_))),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

/// Short measurement windows: the suite has ~60 benchmarks and some
/// iterate whole simulations, so the default 3 s + 5 s windows would
/// take the better part of an hour.
fn quick_config() -> Criterion {
    Criterion::default()
        .warm_up_time(StdBenchDuration::from_secs(1))
        .measurement_time(StdBenchDuration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = quick_config();
    targets =
    bench_hash,
    bench_store_get,
    bench_store_set,
    bench_protocol
}
criterion_main!(benches);
