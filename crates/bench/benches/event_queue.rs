//! Micro-benchmarks of the discrete-event core: queue churn, RNG, and the
//! latency histogram.

use std::time::Duration as StdBenchDuration;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use densekv_sim::stats::LatencyHistogram;
use densekv_sim::{Duration, EventQueue, SimTime, SplitMix64};

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    group.throughput(Throughput::Elements(1));
    group.bench_function("push_pop_1k_window", |b| {
        let mut q = EventQueue::new();
        let mut rng = SplitMix64::new(1);
        for _ in 0..1000 {
            q.push(SimTime::from_ps(rng.next_u64() >> 20), 0u32);
        }
        b.iter(|| {
            let (t, _) = q.pop().expect("queue stays primed");
            q.push(t + Duration::from_nanos(rng.next_below(1000) + 1), 0u32);
        })
    });
    group.finish();
}

fn bench_rng(c: &mut Criterion) {
    let mut group = c.benchmark_group("rng");
    group.throughput(Throughput::Elements(1));
    group.bench_function("splitmix_u64", |b| {
        let mut rng = SplitMix64::new(7);
        b.iter(|| black_box(rng.next_u64()))
    });
    group.bench_function("splitmix_below", |b| {
        let mut rng = SplitMix64::new(7);
        b.iter(|| black_box(rng.next_below(12_288)))
    });
    group.finish();
}

fn bench_histogram(c: &mut Criterion) {
    let mut group = c.benchmark_group("histogram");
    group.throughput(Throughput::Elements(1));
    group.bench_function("record", |b| {
        let mut h = LatencyHistogram::new();
        let mut rng = SplitMix64::new(3);
        b.iter(|| h.record(Duration::from_nanos(rng.next_below(1_000_000))))
    });
    group.bench_function("percentile", |b| {
        let mut h = LatencyHistogram::new();
        let mut rng = SplitMix64::new(3);
        for _ in 0..100_000 {
            h.record(Duration::from_nanos(rng.next_below(1_000_000)));
        }
        b.iter(|| black_box(h.percentile(0.99)))
    });
    group.finish();
}

/// Short measurement windows: the suite has ~60 benchmarks and some
/// iterate whole simulations, so the default 3 s + 5 s windows would
/// take the better part of an hour.
fn quick_config() -> Criterion {
    Criterion::default()
        .warm_up_time(StdBenchDuration::from_secs(1))
        .measurement_time(StdBenchDuration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = quick_config();
    targets = bench_event_queue, bench_rng, bench_histogram
}
criterion_main!(benches);
