//! Micro-benchmarks of the flash translation layer: sustained overwrite
//! pressure (GC in the loop) and the wear-leveling ablation.

use std::time::Duration as StdBenchDuration;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use densekv_mem::flash::FlashConfig;
use densekv_mem::ftl::Ftl;
use densekv_sim::Duration;

fn small_config() -> FlashConfig {
    FlashConfig {
        planes: 4,
        page_bytes: 8 << 10,
        pages_per_block: 32,
        blocks_per_plane: 64,
        read_latency: Duration::from_micros(10),
        program_latency: Duration::from_micros(200),
        erase_latency: Duration::from_millis(2),
        controller_overhead: Duration::from_micros(8),
        active_mw_per_gbps: 6.0,
    }
}

fn bench_ftl_write(c: &mut Criterion) {
    let mut group = c.benchmark_group("ftl");
    group.throughput(Throughput::Elements(1));
    group.bench_function("overwrite_steady_state", |b| {
        let mut ftl = Ftl::new(small_config(), 0.125);
        let exported = ftl.exported_pages();
        // Fill once so every write is an overwrite triggering GC churn.
        for lpn in 0..exported {
            ftl.write(lpn).expect("fits");
        }
        let mut lpn = 0;
        b.iter(|| {
            lpn = (lpn + 7) % exported;
            ftl.write(lpn).expect("steady state")
        })
    });
    group.bench_function("read_mapped", |b| {
        let mut ftl = Ftl::new(small_config(), 0.125);
        for lpn in 0..1000 {
            ftl.write(lpn).expect("fits");
        }
        let mut lpn = 0;
        b.iter(|| {
            lpn = (lpn + 1) % 1000;
            ftl.read(lpn).expect("mapped")
        })
    });
    group.finish();
}

/// Wear-leveling ablation: report write amplification and wear spread
/// with and without static leveling under a hot/cold split.
fn bench_wear_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ftl_ablation");
    group.sample_size(10);
    for (label, threshold) in [("leveling_on", 3u32), ("leveling_off", u32::MAX)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut ftl = Ftl::new(small_config(), 0.125);
                ftl.set_wear_threshold(threshold);
                let cold = ftl.exported_pages() / 2;
                for lpn in 0..cold {
                    ftl.write(lpn).expect("cold fill");
                }
                for i in 0..60_000u64 {
                    ftl.write(cold + (i % 16)).expect("hot overwrites");
                }
                ftl.write_amplification()
            })
        });
        // Report the ablation outcome once per variant.
        let mut ftl = Ftl::new(small_config(), 0.125);
        ftl.set_wear_threshold(threshold);
        let cold = ftl.exported_pages() / 2;
        for lpn in 0..cold {
            ftl.write(lpn).expect("cold fill");
        }
        for i in 0..60_000u64 {
            ftl.write(cold + (i % 16)).expect("hot overwrites");
        }
        let (min, max) = ftl.flash().wear_spread();
        eprintln!(
            "[ftl_ablation] {label}: WA={:.2} wear spread {min}..{max}",
            ftl.write_amplification()
        );
    }
    group.finish();
}

/// Short measurement windows: the suite has ~60 benchmarks and some
/// iterate whole simulations, so the default 3 s + 5 s windows would
/// take the better part of an hour.
fn quick_config() -> Criterion {
    Criterion::default()
        .warm_up_time(StdBenchDuration::from_secs(1))
        .measurement_time(StdBenchDuration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = quick_config();
    targets = bench_ftl_write, bench_wear_ablation
}
criterion_main!(benches);
