//! Benchmarks of the end-to-end request simulator itself (how fast the
//! simulation runs on the host), plus the L2 and row-buffer ablations
//! reported as simulated outcomes.

use std::time::Duration as StdBenchDuration;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use densekv::sim::{CoreSim, CoreSimConfig};
use densekv::sweep::{measure_point, SweepEffort};
use densekv_cpu::CoreConfig;
use densekv_mem::PagePolicy;
use densekv_sim::Duration;
use densekv_stack::MemoryKind;
use densekv_workload::{key_bytes, Op, Request};

fn warmed(config: CoreSimConfig) -> CoreSim {
    let mut core = CoreSim::new(config).expect("valid");
    core.preload(64, 32).expect("fits");
    let req = Request {
        op: Op::Get,
        key: key_bytes(0),
        value_bytes: 64,
    };
    for _ in 0..300 {
        core.execute(&req);
    }
    core
}

fn bench_request_execution(c: &mut Criterion) {
    let mut group = c.benchmark_group("request_sim");
    group.throughput(Throughput::Elements(1));
    let req = Request {
        op: Op::Get,
        key: key_bytes(0),
        value_bytes: 64,
    };
    group.bench_function("mercury_a7_get64", |b| {
        let mut core = warmed(CoreSimConfig::mercury_a7());
        b.iter(|| black_box(core.execute(&req)))
    });
    group.bench_function("iridium_a7_get64", |b| {
        let mut core = warmed(CoreSimConfig::iridium_a7());
        b.iter(|| black_box(core.execute(&req)))
    });
    let big = Request {
        op: Op::Get,
        key: key_bytes(0),
        value_bytes: 64 << 10,
    };
    group.bench_function("mercury_a7_get64k", |b| {
        let mut core = CoreSim::new(CoreSimConfig::mercury_a7()).expect("valid");
        core.preload(64 << 10, 8).expect("fits");
        for _ in 0..30 {
            core.execute(&big);
        }
        b.iter(|| black_box(core.execute(&big)))
    });
    group.finish();
}

/// L2 ablation (paper §6.2): simulated TPS with and without the L2 at
/// both ends of the latency sweep, printed as results.
fn bench_l2_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_l2");
    group.sample_size(10);
    for (label, l2, ns) in [
        ("l2_on_10ns", true, 10u64),
        ("l2_off_10ns", false, 10),
        ("l2_on_100ns", true, 100),
        ("l2_off_100ns", false, 100),
    ] {
        let config = CoreSimConfig::mercury(CoreConfig::a7_1ghz(), l2, Duration::from_nanos(ns));
        let point = measure_point(&config, 64, SweepEffort::quick());
        eprintln!("[ablation_l2] {label}: {:.1} KTPS", point.get.tps / 1000.0);
        group.bench_function(label, |b| {
            b.iter(|| black_box(measure_point(&config, 64, SweepEffort::quick()).get.tps))
        });
    }
    group.finish();
}

/// Row-buffer ablation: the paper assumes worst-case closed-page timing;
/// open-page rows show what that assumption costs.
fn bench_rowbuffer_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_rowbuffer");
    group.sample_size(10);
    for (label, policy) in [
        ("closed_page", PagePolicy::Closed),
        ("open_page", PagePolicy::Open),
    ] {
        let mut config =
            CoreSimConfig::mercury(CoreConfig::a7_1ghz(), true, Duration::from_nanos(50));
        if let MemoryKind::Mercury(dram) = &mut config.memory {
            dram.page_policy = policy;
        }
        let point = measure_point(&config, 4096, SweepEffort::quick());
        eprintln!(
            "[ablation_rowbuffer] {label}@50ns 4KB GET: {:.1} KTPS",
            point.get.tps / 1000.0
        );
        group.bench_function(label, |b| {
            b.iter(|| black_box(measure_point(&config, 4096, SweepEffort::quick()).get.tps))
        });
    }
    group.finish();
}

/// 3D-stacking ablation: the same core and capacity behind a
/// conventional DDR3 DIMM interface instead of the 16-port 3D stack —
/// what the paper's Table 2 motivation is worth at the request level.
fn bench_ddr3_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_3d_stacking");
    group.sample_size(10);
    for (label, dram) in [
        ("3d_stack_10ns", densekv_mem::dram::DramConfig::default()),
        ("ddr3_dimm_60ns", densekv_mem::dram::DramConfig::ddr3_like()),
    ] {
        let mut config =
            CoreSimConfig::mercury(CoreConfig::a7_1ghz(), false, Duration::from_nanos(10));
        config.memory = MemoryKind::Mercury(dram);
        let small = measure_point(&config, 64, SweepEffort::quick());
        let large = measure_point(&config, 64 << 10, SweepEffort::quick());
        eprintln!(
            "[ablation_3d_stacking] {label} (no L2): 64B {:.1} KTPS, 64KB {:.2} KTPS",
            small.get.tps / 1000.0,
            large.get.tps / 1000.0
        );
        group.bench_function(label, |b| {
            b.iter(|| black_box(measure_point(&config, 64, SweepEffort::quick()).get.tps))
        });
    }
    group.finish();
}

/// Network-stack ablation: the same Mercury core with a UDP GET path
/// instead of TCP — how much of the request is pure protocol software
/// (the §2.3.1 complaint TSSP attacks with hardware offload).
fn bench_udp_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_udp");
    group.sample_size(10);
    for (label, tcp) in [
        ("tcp", densekv_net::TcpCostModel::linux()),
        ("udp", densekv_net::TcpCostModel::udp()),
    ] {
        let mut config = CoreSimConfig::mercury_a7();
        config.tcp = tcp;
        let point = measure_point(&config, 64, SweepEffort::quick());
        eprintln!(
            "[ablation_udp] {label} 64B GET: {:.1} KTPS",
            point.get.tps / 1000.0
        );
        group.bench_function(label, |b| {
            b.iter(|| black_box(measure_point(&config, 64, SweepEffort::quick()).get.tps))
        });
    }
    group.finish();
}

/// Short measurement windows: the suite has ~60 benchmarks and some
/// iterate whole simulations, so the default 3 s + 5 s windows would
/// take the better part of an hour.
fn quick_config() -> Criterion {
    Criterion::default()
        .warm_up_time(StdBenchDuration::from_secs(1))
        .measurement_time(StdBenchDuration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = quick_config();
    targets =
    bench_request_execution,
    bench_l2_ablation,
    bench_rowbuffer_ablation,
    bench_ddr3_ablation,
    bench_udp_ablation
}
criterion_main!(benches);
