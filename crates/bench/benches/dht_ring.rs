//! Micro-benchmarks of the consistent-hash ring (paper §3.8) plus the
//! virtual-node load-balance ablation.

use std::time::Duration as StdBenchDuration;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use densekv_dht::ConsistentHashRing;

fn ring(nodes: u32, vnodes: u32) -> ConsistentHashRing {
    let mut r = ConsistentHashRing::new(vnodes);
    for n in 0..nodes {
        r.add_node(n);
    }
    r
}

fn bench_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("dht");
    group.throughput(Throughput::Elements(1));
    for (nodes, vnodes) in [(96u32, 4u32), (96, 64), (3072, 4)] {
        let r = ring(nodes, vnodes);
        let mut i = 0u64;
        group.bench_function(format!("lookup/{nodes}n_{vnodes}v"), |b| {
            b.iter(|| {
                i += 1;
                black_box(r.node_for(&i.to_le_bytes()))
            })
        });
    }
    group.finish();
}

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("dht");
    group.bench_function("build/96n_64v", |b| b.iter(|| black_box(ring(96, 64))));
    group.finish();
}

/// The §3.8 ablation: print load imbalance vs virtual-node count while
/// benchmarking the imbalance computation itself.
fn bench_balance(c: &mut Criterion) {
    let mut group = c.benchmark_group("dht_balance");
    group.sample_size(10);
    for vnodes in [1u32, 4, 16, 64] {
        let r = ring(96, vnodes);
        let imbalance = r.load_imbalance(100_000, 7);
        eprintln!("[dht_balance] 96 nodes, {vnodes:>2} vnodes: max/mean = {imbalance:.3}");
        group.bench_function(format!("imbalance/{vnodes}v"), |b| {
            b.iter(|| black_box(r.load_imbalance(10_000, 7)))
        });
    }
    group.finish();
}

/// Short measurement windows: the suite has ~60 benchmarks and some
/// iterate whole simulations, so the default 3 s + 5 s windows would
/// take the better part of an hour.
fn quick_config() -> Criterion {
    Criterion::default()
        .warm_up_time(StdBenchDuration::from_secs(1))
        .measurement_time(StdBenchDuration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = quick_config();
    targets = bench_lookup, bench_build, bench_balance
}
criterion_main!(benches);
