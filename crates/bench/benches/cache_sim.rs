//! Micro-benchmarks of the cache simulator and the phase engine — the
//! inner loops every simulated request runs through.

use std::time::Duration as StdBenchDuration;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use densekv_cpu::cache::{Cache, CacheConfig};
use densekv_cpu::engine::{PhaseEngine, PhaseSpec};
use densekv_cpu::CoreConfig;
use densekv_mem::dram::{DramConfig, DramStack};
use densekv_mem::MemoryTiming;

fn bench_cache_access(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache");
    group.throughput(Throughput::Elements(1));

    group.bench_function("l1_hit", |b| {
        let mut cache = Cache::new(CacheConfig::l1_32k());
        cache.access(0);
        b.iter(|| black_box(cache.access(0)))
    });

    group.bench_function("l1_thrash", |b| {
        let mut cache = Cache::new(CacheConfig::l1_32k());
        let mut line = 0u64;
        b.iter(|| {
            line = (line + 1) % 4096; // 8x capacity -> all misses
            black_box(cache.access(line))
        })
    });

    group.bench_function("l2_mixed", |b| {
        let mut cache = Cache::new(CacheConfig::l2_2m());
        let mut line = 0u64;
        b.iter(|| {
            line = (line + 97) % 40_000;
            black_box(cache.access(line))
        })
    });
    group.finish();
}

fn bench_phase_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    let spec = PhaseSpec {
        name: "bench-net",
        instructions: 24_000,
        ifetch_footprint_lines: 3_000,
        ifetch_per_kinstr: 12,
        kernel_refs: 90,
        store_refs: vec![100, 200, 300],
        stream: None,
        uncached_ops: 6,
    };
    group.bench_function("net_phase_a7", |b| {
        let mut engine = PhaseEngine::with_l2(CoreConfig::a7_1ghz());
        let mut dram = DramStack::new(DramConfig::default());
        b.iter(|| black_box(engine.run(&spec, &mut dram)))
    });
    group.bench_function("net_phase_a15_no_l2", |b| {
        let mut engine = PhaseEngine::without_l2(CoreConfig::a15_1ghz());
        let mut dram = DramStack::new(DramConfig::default());
        b.iter(|| black_box(engine.run(&spec, &mut dram)))
    });
    group.finish();
}

fn bench_dram_device(c: &mut Criterion) {
    let mut group = c.benchmark_group("dram");
    group.throughput(Throughput::Bytes(64));
    group.bench_function("line_access", |b| {
        let mut dram = DramStack::new(DramConfig::default());
        let mut line = 0u64;
        b.iter(|| {
            line = line.wrapping_add(12345);
            black_box(dram.line_access(line, densekv_mem::AccessKind::Read))
        })
    });
    group.finish();
}

/// Short measurement windows: the suite has ~60 benchmarks and some
/// iterate whole simulations, so the default 3 s + 5 s windows would
/// take the better part of an hour.
fn quick_config() -> Criterion {
    Criterion::default()
        .warm_up_time(StdBenchDuration::from_secs(1))
        .measurement_time(StdBenchDuration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = quick_config();
    targets = bench_cache_access, bench_phase_engine, bench_dram_device
}
criterion_main!(benches);
