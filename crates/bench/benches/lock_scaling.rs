//! The lock-contention ablation (paper §3.6 / Table 4 baselines): real
//! host threads driving the real store under the three locking
//! architectures. Prints a scaling curve and benchmarks single-op cost.

use std::time::Duration as StdDuration;

use std::time::Duration as StdBenchDuration;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use densekv_baseline::host::{measure, Variant};

fn bench_lock_scaling(c: &mut Criterion) {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get() as u32)
        .unwrap_or(2);
    let thread_counts: Vec<u32> = [1u32, 2, 4, 8, 16]
        .into_iter()
        .filter(|&t| t <= cores)
        .collect();

    // Print the full scaling curve once (the Table 4 ordering).
    eprintln!("[lock_scaling] host has {cores} cores");
    for variant in Variant::ALL {
        let curve: Vec<String> = thread_counts
            .iter()
            .map(|&t| {
                let p = measure(variant, t, StdDuration::from_millis(400));
                format!("{t}T={:.0}K", p.ops_per_sec / 1000.0)
            })
            .collect();
        eprintln!(
            "[lock_scaling] {:<28} {}",
            variant.label(),
            curve.join("  ")
        );
    }

    // Criterion-tracked: throughput at the host's natural width.
    let threads = cores.min(8);
    let mut group = c.benchmark_group("lock_scaling");
    group.sample_size(10);
    group.throughput(Throughput::Elements(1));
    for variant in Variant::ALL {
        group.bench_function(format!("{:?}/{threads}T", variant), |b| {
            b.iter_custom(|iters| {
                // Scale measurement time with requested iterations, within
                // sane bounds.
                let ms = (iters / 50).clamp(100, 800);
                let point = measure(variant, threads, StdDuration::from_millis(ms));
                // Report time-per-op equivalent for the iteration count.
                StdDuration::from_secs_f64(iters as f64 / point.ops_per_sec)
            })
        });
    }
    group.finish();
}

/// Short measurement windows: the suite has ~60 benchmarks and some
/// iterate whole simulations, so the default 3 s + 5 s windows would
/// take the better part of an hour.
fn quick_config() -> Criterion {
    Criterion::default()
        .warm_up_time(StdBenchDuration::from_secs(1))
        .measurement_time(StdBenchDuration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = quick_config();
    targets = bench_lock_scaling
}
criterion_main!(benches);
