//! Micro-benchmarks of the hot paths this harness leans on: Zipf rank
//! sampling (the O(1) alias draw versus the O(log n) CDF search it
//! replaced), the cache set-index fast path, one end-to-end simulated
//! request, and one quick sweep point — the unit of work the parallel
//! harness distributes across workers.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use densekv::sim::{CoreSim, CoreSimConfig};
use densekv::slots::RequestSlots;
use densekv::sweep::{measure_point, SweepEffort};
use densekv_cpu::cache::{Cache, CacheConfig};
use densekv_sim::dist::Zipf;
use densekv_sim::{Scheduler, SplitMix64};
use densekv_workload::{key_bytes, Op, Request};

fn bench_zipf_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotpaths/zipf");
    group.throughput(Throughput::Elements(1));
    // Population matched to the cluster workload's key space.
    let zipf = Zipf::new(10_000, 0.99);
    group.bench_function("alias_sample", |b| {
        let mut rng = SplitMix64::new(7);
        b.iter(|| black_box(zipf.sample(&mut rng)))
    });
    group.bench_function("cdf_sample", |b| {
        let mut rng = SplitMix64::new(7);
        b.iter(|| black_box(zipf.sample_cdf(&mut rng)))
    });
    group.finish();
}

fn bench_cache_hot_hit(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotpaths/cache");
    group.throughput(Throughput::Elements(1));
    group.bench_function("l1_mru_hit", |b| {
        let mut cache = Cache::new(CacheConfig::l1_32k());
        cache.access(0);
        b.iter(|| black_box(cache.access(0)))
    });
    group.finish();
}

fn bench_request(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotpaths/request");
    group.throughput(Throughput::Elements(1));
    let req = Request {
        op: Op::Get,
        key: key_bytes(0),
        value_bytes: 64,
    };
    group.bench_function("mercury_a7_get64", |b| {
        let mut core = CoreSim::new(CoreSimConfig::mercury_a7()).expect("valid");
        core.preload(64, 32).expect("fits");
        for _ in 0..300 {
            core.execute(&req);
        }
        b.iter(|| black_box(core.execute(&req)))
    });
    group.finish();
}

fn bench_scheduler(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotpaths/scheduler");
    group.throughput(Throughput::Elements(1));
    // Steady-state unit: pop the earliest event off the timer wheel and
    // reschedule it a random distance ahead, holding a 4096-event
    // backlog so pops cascade wheel levels.
    group.bench_function("push_pop", |b| {
        let mut sched: Scheduler<u32> = Scheduler::new();
        let mut rng = SplitMix64::new(11);
        for id in 0..4096u32 {
            sched.schedule_in(
                densekv_sim::Duration::from_nanos(1 + rng.next_below(1 << 20)),
                id,
            );
        }
        b.iter(|| {
            let (_, id) = sched.pop().expect("standing backlog");
            sched.schedule_in(
                densekv_sim::Duration::from_nanos(1 + rng.next_below(1 << 20)),
                id,
            );
        })
    });
    group.finish();
}

fn bench_slab_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotpaths/slots");
    group.throughput(Throughput::Elements(1));
    // Acquire renders the key into the arena slab, release recycles it
    // through the free list — per-request state cost, no simulator.
    group.bench_function("request_slab_churn", |b| {
        let mut slots = RequestSlots::with_capacity(4);
        let mut key_id = 0u64;
        b.iter(|| {
            key_id = key_id.wrapping_add(1);
            let a = slots.acquire(Op::Get, 64, key_id);
            let b2 = slots.acquire(Op::Put, 64, !key_id);
            black_box(slots.key(b2));
            slots.release(b2);
            slots.release(a);
        })
    });
    group.finish();
}

fn bench_sweep_point(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotpaths/sweep");
    group.sample_size(10);
    group.bench_function("quick_point_64b", |b| {
        let cfg = CoreSimConfig::mercury_a7();
        b.iter(|| black_box(measure_point(&cfg, 64, SweepEffort::quick())))
    });
    group.finish();
}

criterion_group!(
    bench_hotpaths,
    bench_zipf_sampling,
    bench_cache_hot_hit,
    bench_request,
    bench_scheduler,
    bench_slab_churn,
    bench_sweep_point
);
criterion_main!(bench_hotpaths);
