//! Event-driven energy accounting for [`CoreSim`] runs: per-request
//! [`EnergyBreakdown`]s mirroring [`PhaseBreakdown`], a component-tagged
//! [`EnergyMeter`], watts gauges in the telemetry sampler, and a
//! [`PowerTimeline`] — plus the *measured* TPS/Watt those add up to.
//!
//! Like [`crate::observe`], this layer is strictly passive: it reads the
//! core's counters and the request's phase durations after the fact and
//! does arithmetic on them. An [`EnergyObserver`] over a disabled meter
//! performs no accounting at all, and neither mode can change a
//! simulation's performance outputs (enforced by the workspace property
//! tests).
//!
//! # Attribution
//!
//! The Table 1 model charges cores, MAC, PHY, and L2 leakage as constant
//! draw, so a request's *time-proportional* energy is its RTT times the
//! one-core stack's static watts; the per-phase rows of an
//! [`EnergyBreakdown`] split that by the same phase boundaries
//! [`PhaseBreakdown::phases`] reports. Activity-proportional energy —
//! memory-device bytes at Table 1's pJ/byte and per-access cache energy
//! carved out of the core budget — cannot be pinned to a single phase
//! (a GET's value bytes move during `value-copy` *and* the store walk),
//! so it is reported per request in [`EnergyBreakdown::memory_j`] and
//! the cache fields. Integrated over a run, the meter reproduces the
//! analytic §5.4 `stack_power()` at the observed bandwidth; the
//! `energy_converges_to_stack_power` test holds this to 1 %.

use densekv_energy::{Component, EnergyMeter, EnergyRates, PowerTimeline};
use densekv_sim::stats::LatencyHistogram;
use densekv_sim::{Duration, SimTime};
use densekv_stack::power::{energy_rates, tier_rates};
use densekv_telemetry::Telemetry;
use densekv_workload::Request;

use crate::observe::CoreObserver;
use crate::sim::{CoreSim, PhaseBreakdown, RequestTiming};

/// Gauge columns an [`EnergyObserver`] keeps current when the bundle's
/// sampler carries them (matched by name, so they compose with
/// [`crate::observe::CORE_TIMELINE_COLUMNS`] in one sampler):
/// `watts` is the last request's energy over its RTT, `mean_watts` the
/// run's accumulated joules over elapsed sim-time.
pub const ENERGY_TIMELINE_COLUMNS: &[&str] = &["watts", "mean_watts"];

/// Extra gauge columns for hybrid (Helios) cores, matched by name like
/// [`ENERGY_TIMELINE_COLUMNS`]: the DRAM tier's cumulative hit rate,
/// the last request's per-tier device bandwidth, and the memory watts
/// those tiers drew at their separate Table 1 rates. On single-tier
/// cores the columns stay zero.
pub const HYBRID_TIMELINE_COLUMNS: &[&str] =
    &["tier_hit_rate", "dram_gbps", "flash_gbps", "tier_watts"];

/// One request's round trip priced in joules — [`PhaseBreakdown`]'s
/// energy mirror.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Time-proportional joules per phase, in [`PhaseBreakdown::phases`]
    /// order (phase duration × the stack's static watts).
    pub phase_j: [f64; 11],
    /// Memory-device bytes this request moved, priced at Table 1's
    /// pJ/byte (whole-request: value copies and store walks both move
    /// device lines). Hybrid (Helios) cores price DRAM-tier and
    /// flash-array bytes at their separate rates.
    pub memory_j: f64,
    /// L1 I+D access energy (already included in the phase rows' core
    /// budget; reported for attribution, see [`EnergyMeter::attribute_cache`]).
    pub cache_l1_j: f64,
    /// L2 access energy (likewise carved out of the core budget).
    pub cache_l2_j: f64,
}

impl EnergyBreakdown {
    /// `(phase, joules)` rows in wire order, named like
    /// [`PhaseBreakdown::phases`].
    #[must_use]
    pub fn phases(&self) -> [(&'static str, f64); 11] {
        let names = PhaseBreakdown::default().phases();
        let mut rows = [("", 0.0); 11];
        for (i, row) in rows.iter_mut().enumerate() {
            *row = (names[i].0, self.phase_j[i]);
        }
        rows
    }

    /// Total joules charged for the request: the time-proportional phase
    /// energy plus the activity-proportional memory energy. Cache energy
    /// is *not* added — it lives inside the phase rows' core budget.
    #[must_use]
    pub fn total_j(&self) -> f64 {
        self.phase_j.iter().sum::<f64>() + self.memory_j
    }

    /// Accumulates another breakdown (for per-op means over a run).
    pub fn accumulate(&mut self, other: &EnergyBreakdown) {
        for (mine, theirs) in self.phase_j.iter_mut().zip(other.phase_j.iter()) {
            *mine += theirs;
        }
        self.memory_j += other.memory_j;
        self.cache_l1_j += other.cache_l1_j;
        self.cache_l2_j += other.cache_l2_j;
    }

    /// Every field divided by `n` (turning a run total into a per-op
    /// mean); `n == 0` returns zeros.
    #[must_use]
    pub fn scaled(&self, n: u64) -> EnergyBreakdown {
        if n == 0 {
            return EnergyBreakdown::default();
        }
        let inv = 1.0 / n as f64;
        let mut out = *self;
        out.phase_j.iter_mut().for_each(|j| *j *= inv);
        out.memory_j *= inv;
        out.cache_l1_j *= inv;
        out.cache_l2_j *= inv;
        out
    }
}

/// Charges a [`CoreSim`] run's events to an [`EnergyMeter`], builds
/// per-request [`EnergyBreakdown`]s, feeds a [`PowerTimeline`], and
/// keeps the sampler's watts gauges current.
///
/// Construct it *after* any preload, so the device-byte and cache
/// counters it charges deltas of cover only the measured requests.
#[derive(Debug)]
pub struct EnergyObserver {
    rates: EnergyRates,
    /// Table 1 J/byte per tier `(DRAM, flash)`. Single-tier stacks put
    /// their whole rate on their own tier, so the split pricing reduces
    /// exactly to `rates.mem_j_per_byte()` for them.
    tier_j_per_byte: (f64, f64),
    meter: EnergyMeter,
    timeline: PowerTimeline,
    clock: SimTime,
    accumulated: EnergyBreakdown,
    requests: u64,
    last_tier_bytes: (u64, u64),
    last_l1_accesses: u64,
    last_l2_accesses: u64,
    watts_col: Option<usize>,
    mean_watts_col: Option<usize>,
    tier_hit_col: Option<usize>,
    dram_gbps_col: Option<usize>,
    flash_gbps_col: Option<usize>,
    tier_watts_col: Option<usize>,
}

impl EnergyObserver {
    /// An observer charging to an enabled meter, with a power timeline
    /// of `bucket`-wide buckets.
    pub fn new(core: &CoreSim, bucket: Duration) -> Self {
        Self::with_meter(core, EnergyMeter::enabled(), PowerTimeline::enabled(bucket))
    }

    /// An observer whose meter and timeline ignore every charge — the
    /// "metering off" arm of the passivity property.
    pub fn off(core: &CoreSim) -> Self {
        Self::with_meter(core, EnergyMeter::disabled(), PowerTimeline::disabled())
    }

    fn with_meter(core: &CoreSim, meter: EnergyMeter, timeline: PowerTimeline) -> Self {
        let stack = core
            .config()
            .stack_config()
            .expect("a running CoreSim always has a valid one-core stack config");
        let cache = core.cache_stats();
        let (dram_mw, flash_mw) = tier_rates(&stack);
        EnergyObserver {
            rates: energy_rates(&stack),
            tier_j_per_byte: (dram_mw * 1e-12, flash_mw * 1e-12),
            meter,
            timeline,
            clock: SimTime::ZERO,
            accumulated: EnergyBreakdown::default(),
            requests: 0,
            last_tier_bytes: core.device_tier_bytes(),
            last_l1_accesses: cache.l1_accesses(),
            last_l2_accesses: cache.l2_accesses(),
            watts_col: None,
            mean_watts_col: None,
            tier_hit_col: None,
            dram_gbps_col: None,
            flash_gbps_col: None,
            tier_watts_col: None,
        }
    }

    /// Resolves which sampler columns (if any) this observer should keep
    /// current, by name. Call once before the run when sharing a sampler
    /// with other observers.
    pub fn bind_sampler(&mut self, tele: &Telemetry) {
        let find = |name: &str| tele.sampler.columns().iter().position(|c| *c == name);
        self.watts_col = find("watts");
        self.mean_watts_col = find("mean_watts");
        self.tier_hit_col = find("tier_hit_rate");
        self.dram_gbps_col = find("dram_gbps");
        self.flash_gbps_col = find("flash_gbps");
        self.tier_watts_col = find("tier_watts");
    }

    /// The rate constants in use (derived from the core's stack config).
    pub fn rates(&self) -> &EnergyRates {
        &self.rates
    }

    /// Prices the request `core` just executed and charges the meter.
    ///
    /// `timing`/`breakdown` must come from the execution immediately
    /// preceding this call (the observer diffs the core's cumulative
    /// device-byte and cache counters).
    pub fn observe(
        &mut self,
        tele: &mut Telemetry,
        core: &CoreSim,
        timing: &RequestTiming,
        breakdown: &PhaseBreakdown,
    ) -> EnergyBreakdown {
        let start = self.clock;
        let end = start + timing.rtt;
        self.clock = end;
        self.requests += 1;
        if !self.meter.is_enabled() {
            return EnergyBreakdown::default();
        }

        // Time-proportional charges: the whole RTT draws the static
        // rates, attributed by what the hardware was doing.
        let rtt = timing.rtt;
        let active = breakdown.server();
        let idle = rtt - active;
        let mac_active = breakdown.req_nic + breakdown.resp_nic;
        let mac_idle = rtt - mac_active;
        self.meter
            .charge_mw_for(Component::CoreActive, self.rates.core_active_mw, active);
        self.meter
            .charge_mw_for(Component::CoreIdle, self.rates.core_idle_mw, idle);
        self.meter
            .charge_mw_for(Component::MacActive, self.rates.mac_mw, mac_active);
        self.meter
            .charge_mw_for(Component::MacIdle, self.rates.mac_mw, mac_idle);
        self.meter
            .charge_mw_for(Component::Phy, self.rates.phy_mw, rtt);
        self.meter
            .charge_mw_for(Component::L2Leak, self.rates.l2_leak_mw_per_core, rtt);

        // Activity-proportional charges: device bytes and cache accesses
        // since the previous request, each tier priced at its own Table 1
        // rate (DRAM 210 mW/(GB/s), flash 6). On single-tier stacks this
        // is exactly `charge_bytes` at the stack's headline rate.
        let (dram_bytes, flash_bytes) = core.device_tier_bytes();
        let dram_moved = dram_bytes.saturating_sub(self.last_tier_bytes.0);
        let flash_moved = flash_bytes.saturating_sub(self.last_tier_bytes.1);
        self.last_tier_bytes = (dram_bytes, flash_bytes);
        let memory_j = self.tier_j_per_byte.0 * dram_moved as f64
            + self.tier_j_per_byte.1 * flash_moved as f64;
        self.meter.charge_j(Component::Memory, memory_j);

        let cache = core.cache_stats();
        let (l1, l2) = (cache.l1_accesses(), cache.l2_accesses());
        let dl1 = l1.saturating_sub(self.last_l1_accesses);
        let dl2 = l2.saturating_sub(self.last_l2_accesses);
        self.last_l1_accesses = l1;
        self.last_l2_accesses = l2;
        self.meter.attribute_cache(&self.rates, dl1, dl2);

        // Per-request breakdown: static watts over each phase, memory
        // and cache reported per request.
        let static_w = self.rates.stack_static_w(1);
        let mut out = EnergyBreakdown {
            memory_j,
            cache_l1_j: self.rates.l1_pj_per_access * 1e-12 * dl1 as f64,
            cache_l2_j: self.rates.l2_pj_per_access * 1e-12 * dl2 as f64,
            ..EnergyBreakdown::default()
        };
        for (i, (_, d)) in breakdown.phases().iter().enumerate() {
            out.phase_j[i] = static_w * d.as_secs_f64();
        }
        self.accumulated.accumulate(&out);

        self.timeline.deposit_span(start, end, static_w);
        self.timeline.deposit(end, out.memory_j);

        if tele.sampler.is_enabled() {
            if let Some(col) = self.watts_col {
                tele.sampler.set(
                    col,
                    out.total_j() / rtt.as_secs_f64().max(f64::MIN_POSITIVE),
                );
            }
            if let Some(col) = self.mean_watts_col {
                tele.sampler
                    .set(col, self.meter.mean_watts(end.elapsed_since(SimTime::ZERO)));
            }
            let rtt_s = rtt.as_secs_f64().max(f64::MIN_POSITIVE);
            let dram_gbps = dram_moved as f64 / rtt_s / 1e9;
            let flash_gbps = flash_moved as f64 / rtt_s / 1e9;
            if let Some(col) = self.tier_hit_col {
                if let Some(stats) = core.tier_stats() {
                    tele.sampler.set(col, stats.hit_rate());
                }
            }
            if let Some(col) = self.dram_gbps_col {
                tele.sampler.set(col, dram_gbps);
            }
            if let Some(col) = self.flash_gbps_col {
                tele.sampler.set(col, flash_gbps);
            }
            if let Some(col) = self.tier_watts_col {
                tele.sampler.set(
                    col,
                    self.tier_j_per_byte.0 * 1e12 * dram_gbps / 1000.0
                        + self.tier_j_per_byte.1 * 1e12 * flash_gbps / 1000.0,
                );
            }
        }

        out
    }

    /// Finishes the run, consuming the observer into its results.
    #[must_use]
    pub fn finish(self, latency: LatencyHistogram) -> EnergyRun {
        EnergyRun {
            latency,
            requests: self.requests,
            elapsed: self.clock.elapsed_since(SimTime::ZERO),
            per_op: self.accumulated.scaled(self.requests),
            total: self.accumulated,
            meter: self.meter,
            timeline: self.timeline,
        }
    }
}

/// Everything an energy-metered closed-loop run produced.
#[derive(Debug)]
pub struct EnergyRun {
    /// Exact RTT distribution (identical to the unmetered run's).
    pub latency: LatencyHistogram,
    /// Requests executed.
    pub requests: u64,
    /// Closed-loop elapsed sim-time.
    pub elapsed: Duration,
    /// Mean per-op energy breakdown.
    pub per_op: EnergyBreakdown,
    /// Run-total energy breakdown.
    pub total: EnergyBreakdown,
    /// Component-tagged joule totals.
    pub meter: EnergyMeter,
    /// Bucketed watts-vs-time curve.
    pub timeline: PowerTimeline,
}

impl EnergyRun {
    /// Measured closed-loop throughput, TPS.
    #[must_use]
    pub fn measured_tps(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.requests as f64 / secs
        } else {
            0.0
        }
    }

    /// Mean measured power, watts.
    #[must_use]
    pub fn measured_watts(&self) -> f64 {
        self.meter.mean_watts(self.elapsed)
    }

    /// Mean joules per operation.
    #[must_use]
    pub fn j_per_op(&self) -> f64 {
        if self.requests > 0 {
            self.meter.total_j() / self.requests as f64
        } else {
            0.0
        }
    }

    /// Measured efficiency from accumulated energy: `(N/T)/(E/T) = N/E`,
    /// TPS per watt. This is the run's *observed* counterpart of the
    /// analytic `tps / stack_power(...).total_w()`.
    #[must_use]
    pub fn measured_tps_per_watt(&self) -> f64 {
        let joules = self.meter.total_j();
        if joules > 0.0 {
            self.requests as f64 / joules
        } else {
            0.0
        }
    }

    /// Observed memory-device bandwidth, GB/s (from the meter's memory
    /// joules and the device's pJ/byte rate).
    #[must_use]
    pub fn observed_mem_gbps(&self, rates: &EnergyRates) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            let bytes = self.meter.component_j(Component::Memory) / rates.mem_j_per_byte();
            bytes / secs / 1e9
        } else {
            0.0
        }
    }

    /// Scales this one-core measured run's throughput up to a
    /// `cores`-core stack, TPS. `derate` is the wire cap from
    /// [`densekv_server::stack_working_point`] — the same §5.3
    /// aggregation the analytic path uses.
    #[must_use]
    pub fn measured_stack_tps(&self, cores: u32, derate: f64) -> f64 {
        f64::from(cores) * self.measured_tps() * derate
    }

    /// Scales this one-core measured run's integrated power up to a
    /// `cores`-core stack, component watts — the *measured* counterpart
    /// of the analytic `stack_power(...).total_w()`.
    ///
    /// Per-core components (core, caches, L2 leakage, memory traffic)
    /// multiply by `cores`; MAC and PHY are shared per stack and count
    /// once. The wire `derate` scales only the activity-proportional
    /// memory power — the static draw stays, exactly as in the analytic
    /// model. Feed the result through `ServerConstraints::wall_power_w`
    /// when comparing against a [`densekv_server::ServerReport`].
    #[must_use]
    pub fn measured_stack_watts(&self, cores: u32, derate: f64) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        let shared_j = self.meter.component_j(Component::MacActive)
            + self.meter.component_j(Component::MacIdle)
            + self.meter.component_j(Component::Phy);
        let memory_j = self.meter.component_j(Component::Memory);
        let per_core_j = self.meter.total_j() - shared_j - memory_j;
        (f64::from(cores) * (per_core_j + memory_j * derate) + shared_j) / secs
    }
}

/// Measures one (config, size) point with energy metering on: the
/// energy counterpart of [`crate::sweep::measure_point`]. Preloads and
/// warms exactly like the performance sweep, then replays GETs through
/// [`run_energy_observed`], so the returned [`EnergyRun`] covers only
/// steady-state measured requests.
pub fn measure_energy_point(
    config: &crate::sim::CoreSimConfig,
    value_bytes: u64,
    effort: crate::sweep::SweepEffort,
) -> EnergyRun {
    use densekv_workload::{FixedSizeWorkload, Op, RequestGenerator};

    let population = crate::sweep::population_for(value_bytes);
    let mut sized = config.clone();
    sized.store_bytes = sized
        .store_bytes
        .max((value_bytes + 4096) * population * 2)
        .max(16 << 20);
    let mut core = CoreSim::new(sized).expect("valid configuration");
    core.preload(value_bytes, population).expect("preload fits");

    let mut gen = FixedSizeWorkload::new(Op::Get, value_bytes, population, 0x5EED ^ value_bytes);
    for _ in 0..effort.warmup_for(value_bytes) {
        core.execute(&gen.next_request());
    }
    let requests: Vec<Request> = (0..effort.measured_for(value_bytes))
        .map(|_| gen.next_request())
        .collect();
    let mut tele = Telemetry::disabled();
    run_energy_observed(
        &mut core,
        &requests,
        &mut tele,
        true,
        Duration::from_micros(500),
    )
}

/// Runs `requests` closed-loop with telemetry *and* energy metering —
/// the energy counterpart of [`crate::observe::run_observed`], sharing
/// its [`CoreObserver`] so spans, metrics, and joules come from one
/// pass. `metered` selects the passivity property's on/off arm.
pub fn run_energy_observed(
    core: &mut CoreSim,
    requests: &[Request],
    tele: &mut Telemetry,
    metered: bool,
    bucket: Duration,
) -> EnergyRun {
    let mut energy = if metered {
        EnergyObserver::new(core, bucket)
    } else {
        EnergyObserver::off(core)
    };
    energy.bind_sampler(tele);
    let mut observer = CoreObserver::new(&mut tele.metrics);
    let mut latency = LatencyHistogram::new();
    for request in requests {
        let (timing, breakdown) = core.execute_breakdown(request);
        energy.observe(tele, core, &timing, &breakdown);
        let timing = observer.record(tele, core, request, timing, &breakdown);
        latency.record(timing.rtt);
    }
    tele.sampler.finish(observer.now());
    energy.finish(latency)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::CoreSimConfig;
    use densekv_stack::power::stack_power;
    use densekv_telemetry::TelemetryConfig;
    use densekv_workload::{key_bytes, Op};

    fn requests(n: u64) -> Vec<Request> {
        (0..n)
            .map(|i| Request {
                op: if i % 4 == 3 { Op::Put } else { Op::Get },
                key: key_bytes(i % 16),
                value_bytes: 64,
            })
            .collect()
    }

    fn fresh_core(config: CoreSimConfig) -> CoreSim {
        let mut core = CoreSim::new(config).unwrap();
        core.preload(64, 16).unwrap();
        core
    }

    #[test]
    fn energy_converges_to_stack_power() {
        // Satellite: integrate event-driven power over a steady-state
        // Mercury run and compare against the analytic §5.4 model at the
        // observed bandwidth. Residual sources: (a) f64 summation order
        // across thousands of per-phase charges vs one closed-form
        // multiply, and (b) the cache attribution's zero-sum carve-out,
        // which moves joules between components but cannot change the
        // total. Both are orders of magnitude below the 1 % gate; the
        // gate is deliberately loose so a future idle-state or DVFS
        // model has headroom before it must update the test.
        let mut core = fresh_core(CoreSimConfig::mercury_a7());
        let mut tele = Telemetry::disabled();
        let run = run_energy_observed(
            &mut core,
            &requests(256),
            &mut tele,
            true,
            Duration::from_micros(500),
        );

        let stack = core.config().stack_config().unwrap();
        let gbps = run.observed_mem_gbps(&energy_rates(&stack));
        let analytic_w = stack_power(&stack, gbps).total_w();
        let measured_w = run.measured_watts();
        let rel = (measured_w - analytic_w).abs() / analytic_w;
        assert!(
            rel < 0.01,
            "measured {measured_w} W vs analytic {analytic_w} W: rel {rel}"
        );
        // The timeline integrates to the same energy as the meter.
        let rel_t = (run.timeline.total_j() - run.meter.total_j()).abs() / run.meter.total_j();
        assert!(rel_t < 1e-9, "timeline vs meter: rel {rel_t}");
    }

    #[test]
    fn breakdown_phases_mirror_phase_breakdown() {
        let mut core = fresh_core(CoreSimConfig::mercury_a7());
        let mut energy = EnergyObserver::new(&core, Duration::from_micros(500));
        let mut tele = Telemetry::disabled();
        let req = requests(1);
        let (timing, phases) = core.execute_breakdown(&req[0]);
        let e = energy.observe(&mut tele, &core, &timing, &phases);

        let names: Vec<_> = e.phases().iter().map(|&(n, _)| n).collect();
        let expected: Vec<_> = phases.phases().iter().map(|&(n, _)| n).collect();
        assert_eq!(names, expected);
        // Phase joules are proportional to phase durations.
        let static_w = energy.rates().stack_static_w(1);
        for ((_, j), (_, d)) in e.phases().iter().zip(phases.phases().iter()) {
            assert!((j - static_w * d.as_secs_f64()).abs() < 1e-15);
        }
        // Time-proportional total is RTT x static watts.
        let time_j: f64 = e.phase_j.iter().sum();
        assert!((time_j - static_w * timing.rtt.as_secs_f64()).abs() < 1e-12);
        assert!(e.memory_j > 0.0, "a 64 B GET moves device lines");
        assert!(e.cache_l1_j > 0.0);
    }

    #[test]
    fn disabled_metering_reports_zero_energy() {
        let mut core = fresh_core(CoreSimConfig::mercury_a7());
        let mut tele = Telemetry::disabled();
        let run = run_energy_observed(
            &mut core,
            &requests(16),
            &mut tele,
            false,
            Duration::from_micros(500),
        );
        assert_eq!(run.meter.total_j(), 0.0);
        assert!(run.timeline.is_empty());
        assert_eq!(run.latency.count(), 16);
        assert!(run.measured_tps() > 0.0, "timing still measured");
        assert_eq!(run.measured_tps_per_watt(), 0.0);
    }

    #[test]
    fn iridium_memory_energy_is_cheaper_per_byte() {
        let m = {
            let mut core = fresh_core(CoreSimConfig::mercury_a7());
            let mut tele = Telemetry::disabled();
            run_energy_observed(
                &mut core,
                &requests(64),
                &mut tele,
                true,
                Duration::from_micros(500),
            )
        };
        let i = {
            let mut core = fresh_core(CoreSimConfig::iridium_a7());
            let mut tele = Telemetry::disabled();
            run_energy_observed(
                &mut core,
                &requests(64),
                &mut tele,
                true,
                Duration::from_micros(500),
            )
        };
        // Flash is 6 mW/(GB/s) vs DRAM's 210: per-op memory joules per
        // byte collapse, even though Iridium's RTT (and so its
        // time-proportional energy) is much larger.
        assert!(i.per_op.memory_j < m.per_op.memory_j);
        assert!(
            i.j_per_op() > m.j_per_op(),
            "flash latency costs idle joules"
        );
    }

    #[test]
    fn helios_memory_energy_prices_tiers_separately() {
        let mut core = fresh_core(CoreSimConfig::helios_a7(64 << 20));
        let before = core.device_tier_bytes();
        let mut columns = crate::observe::CORE_TIMELINE_COLUMNS.to_vec();
        columns.extend_from_slice(HYBRID_TIMELINE_COLUMNS);
        let mut tele = Telemetry::enabled(TelemetryConfig {
            sample_every: 8,
            timeline_interval: Duration::from_micros(200),
            timeline_columns: columns,
        });
        let run = run_energy_observed(
            &mut core,
            &requests(128),
            &mut tele,
            true,
            Duration::from_micros(500),
        );
        let after = core.device_tier_bytes();
        let dram = (after.0 - before.0) as f64;
        let flash = (after.1 - before.1) as f64;
        assert!(dram > 0.0, "warm hits move DRAM-tier bytes");
        assert!(flash > 0.0, "cold fills move flash bytes");
        // The meter charged each tier at its own Table 1 rate…
        let mem_j = run.meter.component_j(Component::Memory);
        let split_j = 210e-12 * dram + 6e-12 * flash;
        assert!((mem_j - split_j).abs() / split_j < 1e-9);
        // …which a single headline rate cannot reproduce.
        assert!(mem_j < 210e-12 * (dram + flash));
        assert!(mem_j > 6e-12 * (dram + flash));
        // The hybrid gauges carried samples (columns 4..8 by layout).
        let rows = tele.sampler.rows();
        assert!(rows.iter().any(|(_, cols)| cols[4] > 0.0), "tier_hit_rate");
        assert!(rows.iter().any(|(_, cols)| cols[5] > 0.0), "dram_gbps");
        assert!(tele.sampler.to_csv().contains("tier_hit_rate"));
    }

    #[test]
    fn sampler_watts_gauges_update_by_name() {
        let mut core = fresh_core(CoreSimConfig::mercury_a7());
        let mut columns = crate::observe::CORE_TIMELINE_COLUMNS.to_vec();
        columns.extend_from_slice(ENERGY_TIMELINE_COLUMNS);
        let mut tele = Telemetry::enabled(TelemetryConfig {
            sample_every: 8,
            timeline_interval: Duration::from_micros(200),
            timeline_columns: columns,
        });
        let run = run_energy_observed(
            &mut core,
            &requests(64),
            &mut tele,
            true,
            Duration::from_micros(500),
        );
        assert!(run.meter.total_j() > 0.0);
        let rows = tele.sampler.rows();
        assert!(!rows.is_empty());
        // The watts columns (indices 4 and 5) carry nonzero samples.
        assert!(rows.iter().any(|(_, cols)| cols[4] > 0.0));
        assert!(rows.iter().any(|(_, cols)| cols[5] > 0.0));
        assert!(tele.sampler.to_csv().contains("watts"));
    }
}
