//! Open-loop (Poisson-arrival) simulation: latency under load.
//!
//! The paper's closed-loop measurements (TPS = 1/RTT, §5.3) give each
//! request an idle server. Real Memcached fleets care about the latency
//! *distribution under load* — the SLA the paper repeatedly appeals to
//! ("a majority of requests within the sub-millisecond range"). This
//! module drives one simulated core with a Poisson request stream and a
//! FIFO queue, reporting queueing-inclusive latency percentiles.

use densekv_sim::dist::Exponential;
use densekv_sim::stats::LatencyHistogram;
use densekv_sim::{Duration, SimTime, SplitMix64};
use densekv_workload::{FixedSizeWorkload, Op};

use crate::sim::{CoreSim, CoreSimConfig};
use crate::slots::RequestSlots;

/// Configuration of one open-loop run.
#[derive(Debug, Clone)]
pub struct OpenLoopConfig {
    /// The simulated core.
    pub sim: CoreSimConfig,
    /// Value size, bytes.
    pub value_bytes: u64,
    /// Offered load in requests per second (Poisson).
    pub rate_per_sec: f64,
    /// Fraction of requests that are GETs (the rest are PUTs).
    pub get_fraction: f64,
    /// Requests measured (after warmup).
    pub requests: u32,
    /// Warmup requests (caches + queue reach steady state).
    pub warmup: u32,
    /// RNG seed for arrivals and key choice.
    pub seed: u64,
}

impl OpenLoopConfig {
    /// A GET-only run at `rate_per_sec` on `sim`.
    pub fn gets(sim: CoreSimConfig, value_bytes: u64, rate_per_sec: f64) -> Self {
        OpenLoopConfig {
            sim,
            value_bytes,
            rate_per_sec,
            get_fraction: 1.0,
            requests: 400,
            warmup: 300,
            seed: 0xA11CE,
        }
    }
}

/// Result of an open-loop run.
#[derive(Debug, Clone)]
pub struct OpenLoopResult {
    /// Queueing-inclusive response-time distribution.
    pub latency: LatencyHistogram,
    /// Offered load, requests/second.
    pub offered_rate: f64,
    /// Server utilization (busy time ÷ simulated time).
    pub utilization: f64,
    /// Fraction of responses within 1 ms — the paper's SLA.
    pub sla_1ms: f64,
    /// Requests that found the server busy (were queued).
    pub queued_fraction: f64,
}

/// Runs the open-loop simulation.
///
/// # Panics
///
/// Panics if the configuration is invalid (zero rate, preload failure).
///
/// # Examples
///
/// ```
/// use densekv::openloop::{run, OpenLoopConfig};
/// use densekv::CoreSimConfig;
///
/// // 30% of the core's closed-loop capacity: almost no queueing.
/// let mut config = OpenLoopConfig::gets(CoreSimConfig::mercury_a7(), 64, 3_000.0);
/// config.requests = 100;
/// config.warmup = 100;
/// let result = run(&config);
/// assert!(result.sla_1ms > 0.99);
/// ```
pub fn run(config: &OpenLoopConfig) -> OpenLoopResult {
    assert!(config.rate_per_sec > 0.0, "rate must be positive");
    let population = 128;
    let mut sized = config.sim.clone();
    sized.store_bytes = sized
        .store_bytes
        .max((config.value_bytes + 4096) * population * 2)
        .max(16 << 20);
    let mut core = CoreSim::new(sized).expect("valid configuration");
    core.preload(config.value_bytes, population)
        .expect("preload fits");

    let arrivals = Exponential::from_rate_per_sec(config.rate_per_sec);
    let mut rng = SplitMix64::new(config.seed);
    let mut gets = FixedSizeWorkload::new(Op::Get, config.value_bytes, population, config.seed);
    let mut puts = FixedSizeWorkload::new(Op::Put, config.value_bytes, population, !config.seed);

    // Requests cycle through one recycled slot in the arena — no
    // per-request key allocation. Draw order (`next_bool`, then the
    // chosen generator's key id) matches the owned-`Request` path
    // exactly, so the run is byte-identical.
    let mut slots = RequestSlots::with_capacity(1);
    let next_slot = |rng: &mut SplitMix64,
                     gets: &mut FixedSizeWorkload,
                     puts: &mut FixedSizeWorkload,
                     slots: &mut RequestSlots| {
        if rng.next_bool(config.get_fraction) {
            slots.acquire(Op::Get, config.value_bytes, gets.next_key_id())
        } else {
            slots.acquire(Op::Put, config.value_bytes, puts.next_key_id())
        }
    };

    // Warm the caches closed-loop (no queue) so the Poisson process sees
    // steady-state service times, not a cold-start backlog.
    for _ in 0..config.warmup {
        let slot = next_slot(&mut rng, &mut gets, &mut puts, &mut slots);
        core.execute_parts(slots.op(slot), slots.key(slot), slots.value_bytes(slot));
        slots.release(slot);
    }

    let mut now = SimTime::ZERO;
    let mut server_free_at = SimTime::ZERO;
    let mut busy = Duration::ZERO;
    let mut latency = LatencyHistogram::new();
    let mut queued = 0u64;

    for _ in 0..config.requests {
        now += arrivals.sample(&mut rng);
        let slot = next_slot(&mut rng, &mut gets, &mut puts, &mut slots);
        // FIFO single-server queue: service starts when the core frees.
        let start = now.max(server_free_at);
        let (timing, _) =
            core.execute_parts(slots.op(slot), slots.key(slot), slots.value_bytes(slot));
        slots.release(slot);
        // The core is occupied for the server-side time; the wire/client
        // portions of the RTT overlap the next request's service.
        server_free_at = start + timing.server;
        let response = start.elapsed_since(now) + timing.rtt;
        latency.record(response);
        busy += timing.server;
        if start > now {
            queued += 1;
        }
    }

    let span = server_free_at
        .max(now)
        .elapsed_since(SimTime::ZERO)
        .as_secs_f64()
        .max(f64::MIN_POSITIVE);
    OpenLoopResult {
        offered_rate: config.rate_per_sec,
        utilization: (busy.as_secs_f64() / span).min(1.0),
        sla_1ms: latency.fraction_within(Duration::from_millis(1)),
        queued_fraction: queued as f64 / config.requests as f64,
        latency,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at_load(fraction_of_capacity: f64) -> OpenLoopResult {
        // A7 Mercury closed-loop capacity at 64 B is ~11 KTPS.
        let mut config = OpenLoopConfig::gets(
            CoreSimConfig::mercury_a7(),
            64,
            11_000.0 * fraction_of_capacity,
        );
        config.requests = 300;
        config.warmup = 200;
        run(&config)
    }

    #[test]
    fn light_load_sees_no_queueing() {
        let r = at_load(0.2);
        assert!(r.queued_fraction < 0.3, "queued {}", r.queued_fraction);
        assert!(r.sla_1ms > 0.99);
        assert!(r.utilization < 0.4, "utilization {}", r.utilization);
    }

    #[test]
    fn latency_rises_with_load() {
        let light = at_load(0.3);
        let heavy = at_load(0.9);
        let p99_light = light.latency.percentile(0.99).expect("samples");
        let p99_heavy = heavy.latency.percentile(0.99).expect("samples");
        assert!(
            p99_heavy > p99_light,
            "p99 must grow with load: {p99_light} -> {p99_heavy}"
        );
        assert!(heavy.utilization > light.utilization);
        assert!(heavy.queued_fraction > light.queued_fraction);
    }

    #[test]
    fn overload_blows_the_sla() {
        let r = at_load(1.5); // beyond capacity: queue grows without bound
        assert!(
            r.sla_1ms < 0.7,
            "overloaded core cannot hold the SLA: {}",
            r.sla_1ms
        );
        assert!(r.utilization > 0.9);
    }

    #[test]
    fn iridium_sla_depends_on_rate() {
        // The paper's Iridium pitch: moderate-to-low request rates keep
        // flash within the SLA.
        let low = run(&OpenLoopConfig::gets(
            CoreSimConfig::iridium_a7(),
            64,
            1_000.0,
        ));
        assert!(
            low.sla_1ms > 0.95,
            "low-rate Iridium holds: {}",
            low.sla_1ms
        );
        let high = run(&OpenLoopConfig::gets(
            CoreSimConfig::iridium_a7(),
            64,
            8_000.0,
        ));
        assert!(
            high.sla_1ms < low.sla_1ms,
            "overdriving flash degrades the SLA"
        );
    }
}
