//! Request-size sweeps: the measurement loop behind Figures 4–6 and the
//! per-core performance inputs to Tables 3–4.

use densekv_par::{par_map, par_map_reduce, Jobs};
use densekv_server::PerCorePerf;
use densekv_sim::stats::LatencyHistogram;
use densekv_sim::Duration;
use densekv_workload::{FixedSizeWorkload, Op};

use crate::sim::{CoreSim, CoreSimConfig, RequestTiming};
use crate::slots::RequestSlots;

/// Measured behaviour of one operation type at one size point.
#[derive(Debug, Clone)]
pub struct OpPoint {
    /// Mean round-trip time.
    pub mean_rtt: Duration,
    /// Transactions per second (1 / mean RTT, §5.3).
    pub tps: f64,
    /// Mean Fig. 4 component times (network / store / hash), as fractions
    /// of server time.
    pub network_share: f64,
    /// Store (Memcached metadata + parse) share.
    pub store_share: f64,
    /// Hash share.
    pub hash_share: f64,
    /// Per-core performance summary for server aggregation.
    pub perf: PerCorePerf,
    /// RTT distribution (for SLA checks).
    pub latency: LatencyHistogram,
}

/// GET and PUT behaviour at one request size.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Value size, bytes.
    pub value_bytes: u64,
    /// GET measurements.
    pub get: OpPoint,
    /// PUT measurements.
    pub put: OpPoint,
}

/// How many requests to replay per (size, op) measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepEffort {
    /// Cache/TLB warmup requests before measuring.
    pub warmup: u32,
    /// Measured requests.
    pub measured: u32,
}

impl SweepEffort {
    /// Full-fidelity effort for the benchmark harness.
    pub fn full() -> Self {
        SweepEffort {
            warmup: 300,
            measured: 100,
        }
    }

    /// Reduced effort for unit tests.
    pub fn quick() -> Self {
        SweepEffort {
            warmup: 90,
            measured: 20,
        }
    }

    /// Scales the measured count down for very large values, where each
    /// request simulates tens of thousands of line transfers.
    pub(crate) fn measured_for(&self, value_bytes: u64) -> u32 {
        if value_bytes >= 1 << 18 {
            (self.measured / 5).max(3)
        } else if value_bytes >= 1 << 14 {
            (self.measured / 2).max(5)
        } else {
            self.measured
        }
    }

    pub(crate) fn warmup_for(&self, value_bytes: u64) -> u32 {
        if value_bytes >= 1 << 18 {
            (self.warmup / 10).max(3)
        } else if value_bytes >= 1 << 14 {
            (self.warmup / 3).max(10)
        } else {
            self.warmup
        }
    }
}

/// Picks a key population that keeps the simulated store around a fixed
/// footprint regardless of value size.
pub(crate) fn population_for(value_bytes: u64) -> u64 {
    ((16 << 20) / value_bytes.max(64)).clamp(4, 512)
}

/// Measures one (config, size) point: preloads, warms, replays GETs and
/// PUTs, and summarizes.
///
/// # Panics
///
/// Panics if the configuration cannot host the preload population (the
/// sweep sizes stores to fit; see [`CoreSimConfig::store_bytes`]).
///
/// # Examples
///
/// ```
/// use densekv::sweep::{measure_point, SweepEffort};
/// use densekv::CoreSimConfig;
///
/// let point = measure_point(&CoreSimConfig::mercury_a7(), 64, SweepEffort::quick());
/// assert!(point.get.tps > point.put.tps * 0.5);
/// ```
pub fn measure_point(config: &CoreSimConfig, value_bytes: u64, effort: SweepEffort) -> SweepPoint {
    let population = population_for(value_bytes);
    let mut sized = config.clone();
    // Size the arena to hold the population with slab slack.
    sized.store_bytes = sized
        .store_bytes
        .max((value_bytes + 4096) * population * 2)
        .max(16 << 20);
    let mut core = CoreSim::new(sized).expect("valid configuration");
    core.preload(value_bytes, population).expect("preload fits");

    let get = measure_op(&mut core, Op::Get, value_bytes, population, effort);
    let put = measure_op(&mut core, Op::Put, value_bytes, population, effort);
    SweepPoint {
        value_bytes,
        get,
        put,
    }
}

fn measure_op(
    core: &mut CoreSim,
    op: Op,
    value_bytes: u64,
    population: u64,
    effort: SweepEffort,
) -> OpPoint {
    // Requests live in a slot arena: the key renders straight into the
    // arena and the slot recycles each iteration, so the loop never
    // allocates. The key-id draws are the exact stream `next_request`
    // would consume, so results are byte-identical to the owned-
    // `Request` path.
    let mut gen = FixedSizeWorkload::new(op, value_bytes, population, 0x5EED ^ value_bytes);
    let mut slots = RequestSlots::with_capacity(1);
    for _ in 0..effort.warmup_for(value_bytes) {
        let slot = slots.acquire(op, value_bytes, gen.next_key_id());
        core.execute_parts(slots.op(slot), slots.key(slot), slots.value_bytes(slot));
        slots.release(slot);
    }
    core.reset_counters();

    let mut latency = LatencyHistogram::new();
    let mut total = Duration::ZERO;
    let mut net = Duration::ZERO;
    let mut store = Duration::ZERO;
    let mut hash = Duration::ZERO;
    let mut server = Duration::ZERO;
    let measured = effort.measured_for(value_bytes);
    for _ in 0..measured {
        let slot = slots.acquire(op, value_bytes, gen.next_key_id());
        let (t, _): (RequestTiming, _) =
            core.execute_parts(slots.op(slot), slots.key(slot), slots.value_bytes(slot));
        slots.release(slot);
        latency.record(t.rtt);
        total += t.rtt;
        net += t.network;
        store += t.store;
        hash += t.hash;
        server += t.server;
    }

    let mean_rtt = total / u64::from(measured);
    let tps = 1.0 / mean_rtt.as_secs_f64();
    let sim_seconds = total.as_secs_f64();
    let perf = PerCorePerf {
        tps,
        mem_gbps: core.device_bytes() as f64 / sim_seconds / 1e9,
        wire_gbps: core.wire_bytes() as f64 / sim_seconds / 1e9,
    };
    let server_s = server.as_secs_f64().max(f64::MIN_POSITIVE);
    OpPoint {
        mean_rtt,
        tps,
        network_share: net.as_secs_f64() / server_s,
        store_share: store.as_secs_f64() / server_s,
        hash_share: hash.as_secs_f64() / server_s,
        perf,
        latency,
    }
}

/// Sweeps every paper size point for one configuration, distributing
/// the independent size points over `jobs` workers.
///
/// Every point builds its own [`CoreSim`] and seeds its workload from
/// the size alone, so the result is bit-identical at any `jobs` —
/// points land back in size order regardless of completion order.
pub fn sweep_sizes(config: &CoreSimConfig, effort: SweepEffort, jobs: Jobs) -> Vec<SweepPoint> {
    let sizes = densekv_workload::paper_size_sweep();
    par_map(jobs, &sizes, |&size| measure_point(config, size, effort))
}

/// Measures the GET round-trip distribution across the whole paper size
/// sweep as one merged histogram — the latency profile a core serving a
/// mixed-size population would exhibit.
///
/// The per-size histograms are measured on `jobs` workers and merged in
/// size order after the join, so the merged distribution (and every
/// percentile read from it) is bit-identical at any `jobs`.
pub fn sweep_get_latency(
    config: &CoreSimConfig,
    effort: SweepEffort,
    jobs: Jobs,
) -> LatencyHistogram {
    let sizes = densekv_workload::paper_size_sweep();
    par_map_reduce(
        jobs,
        sizes.len(),
        |i| measure_point(config, sizes[i], effort).get.latency,
        LatencyHistogram::new(),
        |mut acc, h| {
            acc.merge(&h);
            acc
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::CoreSimConfig;

    #[test]
    fn merged_sweep_latency_is_jobs_invariant() {
        let cfg = CoreSimConfig::mercury_a7();
        let quick = SweepEffort::quick();
        let serial = sweep_get_latency(&cfg, quick, Jobs::SERIAL);
        let par = sweep_get_latency(&cfg, quick, Jobs::new(4));
        assert!(serial.count() > 0);
        assert_eq!(serial.count(), par.count());
        assert_eq!(serial.mean(), par.mean());
        assert_eq!(serial.percentile(0.5), par.percentile(0.5));
        assert_eq!(serial.percentile(0.99), par.percentile(0.99));
    }

    #[test]
    fn tps_is_inverse_rtt() {
        let p = measure_point(&CoreSimConfig::mercury_a7(), 64, SweepEffort::quick());
        let expected = 1.0 / p.get.mean_rtt.as_secs_f64();
        assert!((p.get.tps - expected).abs() < 1e-6);
    }

    #[test]
    fn shares_sum_to_one() {
        let p = measure_point(&CoreSimConfig::mercury_a7(), 1024, SweepEffort::quick());
        let sum = p.get.network_share + p.get.store_share + p.get.hash_share;
        assert!((sum - 1.0).abs() < 0.01, "shares sum to {sum}");
    }

    #[test]
    fn tps_decreases_with_size() {
        let cfg = CoreSimConfig::mercury_a7();
        let small = measure_point(&cfg, 64, SweepEffort::quick());
        let big = measure_point(&cfg, 64 << 10, SweepEffort::quick());
        assert!(small.get.tps > big.get.tps * 3.0);
    }

    #[test]
    fn bandwidth_grows_with_size() {
        let cfg = CoreSimConfig::mercury_a7();
        let small = measure_point(&cfg, 64, SweepEffort::quick());
        let big = measure_point(&cfg, 16 << 10, SweepEffort::quick());
        assert!(big.get.perf.wire_gbps > small.get.perf.wire_gbps * 10.0);
        assert!(big.get.perf.mem_gbps > small.get.perf.mem_gbps);
    }

    #[test]
    fn population_bounds() {
        assert_eq!(population_for(64), 512);
        assert_eq!(population_for(1 << 20), 16);
        assert!(population_for(1 << 30) >= 4);
    }

    #[test]
    fn latency_histogram_populated() {
        let p = measure_point(&CoreSimConfig::mercury_a7(), 64, SweepEffort::quick());
        assert_eq!(
            p.get.latency.count(),
            u64::from(SweepEffort::quick().measured)
        );
        // Sub-millisecond SLA holds for small Mercury GETs.
        assert!(p.get.latency.fraction_within(Duration::from_millis(1)) > 0.99);
    }
}
