//! Shared evaluation machinery: per-core sweeps aggregated into full
//! 1.5U server working points, for every (core, memory, n) combination
//! Tables 3–4 and Figures 7–8 cover.

use densekv_cpu::CoreConfig;
use densekv_par::{par_map, Jobs};
use densekv_server::{
    evaluate_server, plan_server, PerCorePerf, ServerConstraints, ServerPlan, ServerReport,
};
use densekv_sim::Duration;
use densekv_stack::{MemoryKind, StackConfig};

use crate::sim::CoreSimConfig;
use crate::sweep::{measure_point, SweepEffort, SweepPoint};

/// The memory families the paper evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// 3D-DRAM stacks.
    Mercury,
    /// p-BiCS flash stacks.
    Iridium,
}

impl Family {
    /// Both families, Mercury first (the paper's column order).
    pub const ALL: [Family; 2] = [Family::Mercury, Family::Iridium];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Family::Mercury => "Mercury",
            Family::Iridium => "Iridium",
        }
    }

    fn memory_kind(self) -> MemoryKind {
        match self {
            Family::Mercury => MemoryKind::Mercury(densekv_mem::dram::DramConfig::mercury(
                Duration::from_nanos(10),
            )),
            Family::Iridium => MemoryKind::Iridium(densekv_mem::flash::FlashConfig::iridium(
                Duration::from_micros(10),
            )),
        }
    }

    fn sim_config(self, core: CoreConfig) -> CoreSimConfig {
        match self {
            Family::Mercury => CoreSimConfig::mercury(core, true, Duration::from_nanos(10)),
            Family::Iridium => CoreSimConfig::iridium(core, true, Duration::from_micros(10)),
        }
    }
}

/// The three core types of Table 3, in its column order.
pub fn table3_cores() -> [CoreConfig; 3] {
    [
        CoreConfig::a15_1p5ghz(),
        CoreConfig::a15_1ghz(),
        CoreConfig::a7_1ghz(),
    ]
}

/// The per-stack core counts of Tables 3–4.
pub const CORE_COUNTS: [u32; 6] = [1, 2, 4, 8, 16, 32];

/// One fully evaluated (core, family, n) configuration.
#[derive(Debug, Clone)]
pub struct ConfigEval {
    /// Core label (`A7 @1GHz` …).
    pub core_label: String,
    /// Mercury or Iridium.
    pub family: Family,
    /// Cores per stack.
    pub n: u32,
    /// The solved server plan (stack count at peak bandwidth).
    pub plan: ServerPlan,
    /// Server working point at 64 B GETs (Table 4 / Figs. 7–8).
    pub at_64b: ServerReport,
    /// Maximum wall power over the size sweep (Table 3's Power column).
    pub max_power_w: f64,
    /// Maximum server memory bandwidth over the sweep (Table 3's Max BW).
    pub max_mem_bw_gbps: f64,
}

/// Stack-level memory bandwidth for `n` cores at one sweep point, derated
/// by the stack's shared 10 GbE wire. Thin wrapper over the shared
/// [`densekv_server::stack_working_point`] helper so the bandwidth that
/// prices power here is the same one `evaluate_server` uses.
pub fn stack_mem_gbps(n: u32, perf: PerCorePerf) -> f64 {
    densekv_server::stack_working_point(n, perf).mem_gbps
}

/// Evaluates one (core, family) sweep across all core counts.
pub fn evaluate_family(
    core: CoreConfig,
    family: Family,
    sweep: &[SweepPoint],
    constraints: &ServerConstraints,
) -> Vec<ConfigEval> {
    let at_64b = sweep
        .iter()
        .find(|p| p.value_bytes == 64)
        .expect("sweep includes 64 B");

    CORE_COUNTS
        .iter()
        .map(|&n| {
            let stack = StackConfig::new(family.memory_kind(), core.clone(), n, true)
                .expect("valid stack config");
            // Peak per-stack memory bandwidth over the sweep (GET side,
            // as the paper's bandwidth measurements use GETs).
            let peak = sweep
                .iter()
                .map(|p| stack_mem_gbps(n, p.get.perf))
                .fold(0.0f64, f64::max);
            let plan = plan_server(constraints, stack, peak);
            let report_64b = evaluate_server(&plan, at_64b.get.perf);
            let (max_power_w, max_mem_bw_gbps) = sweep
                .iter()
                .map(|p| {
                    let r = evaluate_server(&plan, p.get.perf);
                    (r.power_w, r.mem_gbps)
                })
                .fold((0.0f64, 0.0f64), |(pw, bw), (p, b)| (pw.max(p), bw.max(b)));
            ConfigEval {
                core_label: core.label(),
                family,
                n,
                plan,
                at_64b: report_64b,
                max_power_w,
                max_mem_bw_gbps,
            }
        })
        .collect()
}

/// Sweeps every (core, family) pair over all paper sizes in one flat
/// ordered parallel map, then regroups per pair. The flattening exposes
/// `pairs × sizes` independent tasks to the workers instead of
/// serialising on one pair at a time; index-ordered collection keeps
/// the result bit-identical to the serial nesting.
fn sweep_grid(
    pairs: &[(CoreConfig, Family)],
    effort: SweepEffort,
    jobs: Jobs,
) -> Vec<Vec<SweepPoint>> {
    let sizes = densekv_workload::paper_size_sweep();
    let tasks: Vec<(usize, u64)> = pairs
        .iter()
        .enumerate()
        .flat_map(|(pi, _)| sizes.iter().map(move |&s| (pi, s)))
        .collect();
    let points = par_map(jobs, &tasks, |&(pi, size)| {
        let (core, family) = &pairs[pi];
        measure_point(&family.sim_config(core.clone()), size, effort)
    });
    points
        .chunks(sizes.len())
        .map(|chunk| chunk.to_vec())
        .collect()
}

fn evaluate_grid(
    pairs: Vec<(CoreConfig, Family)>,
    effort: SweepEffort,
    jobs: Jobs,
) -> Vec<ConfigEval> {
    let constraints = ServerConstraints::paper_1p5u();
    let sweeps = sweep_grid(&pairs, effort, jobs);
    pairs
        .into_iter()
        .zip(sweeps)
        .flat_map(|((core, family), sweep)| evaluate_family(core, family, &sweep, &constraints))
        .collect()
}

/// Runs the full evaluation grid: 3 core types × 2 families × 6 core
/// counts (36 server configurations over 6 per-core sweeps).
pub fn evaluate_all(effort: SweepEffort, jobs: Jobs) -> Vec<ConfigEval> {
    let pairs: Vec<(CoreConfig, Family)> = table3_cores()
        .into_iter()
        .flat_map(|core| Family::ALL.map(|family| (core.clone(), family)))
        .collect();
    evaluate_grid(pairs, effort, jobs)
}

/// Evaluates only the A7 column (Table 4 needs nothing else) — much
/// cheaper than [`evaluate_all`].
pub fn evaluate_a7(effort: SweepEffort, jobs: Jobs) -> Vec<ConfigEval> {
    let core = CoreConfig::a7_1ghz();
    let pairs: Vec<(CoreConfig, Family)> =
        Family::ALL.map(|family| (core.clone(), family)).to_vec();
    evaluate_grid(pairs, effort, jobs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a7_grid_matches_table4_shape() {
        let evals = evaluate_a7(SweepEffort::quick(), Jobs::SERIAL);
        assert_eq!(evals.len(), 12);

        let find = |family: Family, n: u32| {
            evals
                .iter()
                .find(|e| e.family == family && e.n == n)
                .expect("config present")
        };

        // Table 4 stack counts: Mercury fills (or nearly fills) the box.
        let m32 = find(Family::Mercury, 32);
        assert!((88..=96).contains(&m32.plan.stacks), "{}", m32.plan.stacks);
        // Throughput near 32.7 MTPS.
        assert!(
            (24e6..42e6).contains(&m32.at_64b.tps),
            "Mercury-32 TPS {}",
            m32.at_64b.tps
        );

        let i32 = find(Family::Iridium, 32);
        assert_eq!(i32.plan.stacks, 96);
        assert!(
            (12e6..22e6).contains(&i32.at_64b.tps),
            "Iridium-32 TPS {}",
            i32.at_64b.tps
        );
        // Iridium density ~1.9 TB.
        assert!((i32.at_64b.memory_gb - 1901.0).abs() < 25.0);

        // TPS doubles n=8 -> n=16 (same stack count).
        let m8 = find(Family::Mercury, 8);
        let m16 = find(Family::Mercury, 16);
        assert!((m16.at_64b.tps / m8.at_64b.tps - 2.0).abs() < 0.05);
    }

    #[test]
    fn max_power_exceeds_64b_power() {
        let evals = evaluate_a7(SweepEffort::quick(), Jobs::SERIAL);
        for e in &evals {
            assert!(
                e.max_power_w >= e.at_64b.power_w - 1e-9,
                "{} n={}",
                e.family.name(),
                e.n
            );
        }
    }

    #[test]
    fn mercury_outruns_iridium_iridium_outdenses_mercury() {
        let evals = evaluate_a7(SweepEffort::quick(), Jobs::SERIAL);
        for n in CORE_COUNTS {
            let m = evals
                .iter()
                .find(|e| e.family == Family::Mercury && e.n == n)
                .expect("mercury");
            let i = evals
                .iter()
                .find(|e| e.family == Family::Iridium && e.n == n)
                .expect("iridium");
            assert!(m.at_64b.tps > i.at_64b.tps, "n={n}: Mercury wins TPS");
            assert!(
                i.at_64b.memory_gb > 4.0 * m.at_64b.memory_gb,
                "n={n}: Iridium wins density"
            );
        }
    }
}
