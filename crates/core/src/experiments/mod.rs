//! One runner per table and figure of the paper's evaluation.
//!
//! | Runner | Reproduces |
//! |---|---|
//! | [`tables::table1`] | Table 1 — component power/area |
//! | [`tables::table2`] | Table 2 — DRAM technology catalog |
//! | [`tables::table3`] | Table 3 — 1.5U maximum configurations |
//! | [`tables::table4`] | Table 4 — comparison to prior art |
//! | [`fig4::run`] | Fig. 4 — GET/PUT execution-time breakdown |
//! | [`fig56::fig5`] | Fig. 5 — Mercury-1 latency sensitivity |
//! | [`fig56::fig6`] | Fig. 6 — Iridium-1 latency sensitivity |
//! | [`fig78::fig7`] | Fig. 7 — density vs. throughput |
//! | [`fig78::fig8`] | Fig. 8 — power vs. throughput |
//! | [`headline::run`] | §6 headline multipliers vs. Bags |
//! | [`thermal::run`] | §6.5 cooling feasibility |
//! | [`sla::run`] | extension: latency under Poisson load |
//! | [`scaling::run`] | extension: event-driven check of §5.3 scaling |
//! | [`efficiency::run`] | extension: TPS/W across the full size sweep |
//! | [`hybrid::run`] | extension: Helios DRAM-tier size sweep |
//! | [`multiget::run`] | extension: multi-GET batching amortization |
//! | [`cluster::cluster_tail`] | extension: cluster-wide tail latency vs. load |
//! | [`cluster::cluster_failover`] | extension: stack-failure remap transient |
//!
//! Each runner returns structured data plus ready-to-print
//! [`TextTable`](crate::report::TextTable)s; the `densekv-bench` binaries
//! are thin wrappers over these.

pub mod cluster;
pub mod efficiency;
pub mod evaluation;
pub mod fig4;
pub mod fig56;
pub mod fig78;
pub mod headline;
pub mod hybrid;
pub mod multiget;
pub mod scaling;
pub mod sla;
pub mod tables;
pub mod thermal;

pub use evaluation::{evaluate_all, ConfigEval};
