//! Extension experiment: validating the §5.3 linear-scaling assumption.
//!
//! Tables 3–4 multiply per-core throughput by the core count; the only
//! stack-level contention the analytic model applies is the 10 GbE wire
//! cap. This experiment re-derives stack throughput *event by event*
//! (cores sharing the port through the discrete-event scheduler) and
//! compares it against the analytic `n × per-core` prediction, at a
//! size where the wire is idle (64 B) and one where it saturates
//! (256 KB).

use crate::report::TextTable;
use crate::stack_sim::{run as run_stack, StackSimConfig};

/// One row: event-driven vs analytic stack throughput.
#[derive(Debug, Clone)]
pub struct ScalingPoint {
    /// Value size, bytes.
    pub value_bytes: u64,
    /// Cores on the stack.
    pub cores: u32,
    /// Event-driven aggregate TPS.
    pub simulated_tps: f64,
    /// Analytic prediction: `n ×` the single-core result.
    pub linear_tps: f64,
    /// Outbound wire utilization in the event-driven run.
    pub wire_utilization: f64,
}

impl ScalingPoint {
    /// Simulated ÷ analytic: 1.0 = the assumption holds.
    pub fn scaling_efficiency(&self) -> f64 {
        self.simulated_tps / self.linear_tps
    }
}

/// Runs the scaling validation across core counts at both sizes.
pub fn run() -> Vec<ScalingPoint> {
    let mut points = Vec::new();
    for &(value_bytes, requests, warmup) in &[(64u64, 60u32, 120u32), (256 << 10, 16, 5)] {
        let mut baseline_cfg = StackSimConfig::mercury_a7(1, value_bytes);
        baseline_cfg.requests_per_core = requests;
        baseline_cfg.warmup_per_core = warmup;
        let one = run_stack(&baseline_cfg);
        for cores in [1u32, 4, 16, 32] {
            let mut cfg = StackSimConfig::mercury_a7(cores, value_bytes);
            cfg.requests_per_core = requests;
            cfg.warmup_per_core = warmup;
            let result = run_stack(&cfg);
            points.push(ScalingPoint {
                value_bytes,
                cores,
                simulated_tps: result.aggregate_tps,
                linear_tps: one.aggregate_tps * cores as f64,
                wire_utilization: result.wire_out_utilization,
            });
        }
    }
    points
}

/// Renders the scaling table.
pub fn table(points: &[ScalingPoint]) -> TextTable {
    let mut t = TextTable::new(vec![
        "size".into(),
        "cores".into(),
        "simulated (KTPS)".into(),
        "n x 1-core (KTPS)".into(),
        "efficiency".into(),
        "wire util".into(),
    ])
    .with_title("Extension — event-driven check of the §5.3 linear-scaling assumption");
    for p in points {
        t.row(vec![
            crate::report::size_label(p.value_bytes),
            p.cores.to_string(),
            format!("{:.2}", p.simulated_tps / 1000.0),
            format!("{:.2}", p.linear_tps / 1000.0),
            format!("{:.2}", p.scaling_efficiency()),
            format!("{:.2}", p.wire_utilization),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_at_64b_saturating_at_256k() {
        let points = run();
        let small_32 = points
            .iter()
            .find(|p| p.value_bytes == 64 && p.cores == 32)
            .expect("present");
        assert!(
            small_32.scaling_efficiency() > 0.85,
            "64 B should scale nearly linearly to 32 cores: {:.2}",
            small_32.scaling_efficiency()
        );
        let big_32 = points
            .iter()
            .find(|p| p.value_bytes == 256 << 10 && p.cores == 32)
            .expect("present");
        assert!(
            big_32.scaling_efficiency() < 0.75,
            "256 KB responses must saturate the port: {:.2}",
            big_32.scaling_efficiency()
        );
        assert!(big_32.wire_utilization > 0.6);
        assert!(table(&points).to_string().contains("efficiency"));
    }
}
