//! Extension experiment: validating the §5.3 linear-scaling assumption.
//!
//! Tables 3–4 multiply per-core throughput by the core count; the only
//! stack-level contention the analytic model applies is the 10 GbE wire
//! cap. This experiment re-derives stack throughput *event by event*
//! (cores sharing the port through the discrete-event scheduler) and
//! compares it against the analytic `n × per-core` prediction, at a
//! size where the wire is idle (64 B) and one where it saturates
//! (256 KB).

use densekv_par::{par_map, Jobs};

use crate::report::TextTable;
use crate::stack_sim::{run as run_stack, StackSimConfig};

/// One row: event-driven vs analytic stack throughput.
#[derive(Debug, Clone)]
pub struct ScalingPoint {
    /// Value size, bytes.
    pub value_bytes: u64,
    /// Cores on the stack.
    pub cores: u32,
    /// Event-driven aggregate TPS.
    pub simulated_tps: f64,
    /// Analytic prediction: `n ×` the single-core result.
    pub linear_tps: f64,
    /// Outbound wire utilization in the event-driven run.
    pub wire_utilization: f64,
}

impl ScalingPoint {
    /// Simulated ÷ analytic: 1.0 = the assumption holds.
    pub fn scaling_efficiency(&self) -> f64 {
        self.simulated_tps / self.linear_tps
    }
}

/// Runs the scaling validation across core counts at both sizes. Every
/// event-driven stack run is an independent worker task; the cores = 1
/// run of each size doubles as the analytic baseline, so no task
/// depends on another.
pub fn run(jobs: Jobs) -> Vec<ScalingPoint> {
    const CORES: [u32; 4] = [1, 4, 16, 32];
    let shapes = [(64u64, 60u32, 120u32), (256 << 10, 16, 5)];
    let tasks: Vec<(u64, u32, u32, u32)> = shapes
        .iter()
        .flat_map(|&(value_bytes, requests, warmup)| {
            CORES
                .iter()
                .map(move |&cores| (value_bytes, requests, warmup, cores))
        })
        .collect();
    let results = par_map(jobs, &tasks, |&(value_bytes, requests, warmup, cores)| {
        let mut cfg = StackSimConfig::mercury_a7(cores, value_bytes);
        cfg.requests_per_core = requests;
        cfg.warmup_per_core = warmup;
        run_stack(&cfg)
    });
    tasks
        .iter()
        .zip(&results)
        .enumerate()
        .map(|(i, (&(value_bytes, _, _, cores), result))| {
            // The first entry of each size group is its 1-core baseline.
            let one = &results[i / CORES.len() * CORES.len()];
            ScalingPoint {
                value_bytes,
                cores,
                simulated_tps: result.aggregate_tps,
                linear_tps: one.aggregate_tps * cores as f64,
                wire_utilization: result.wire_out_utilization,
            }
        })
        .collect()
}

/// Renders the scaling table.
pub fn table(points: &[ScalingPoint]) -> TextTable {
    let mut t = TextTable::new(vec![
        "size".into(),
        "cores".into(),
        "simulated (KTPS)".into(),
        "n x 1-core (KTPS)".into(),
        "efficiency".into(),
        "wire util".into(),
    ])
    .with_title("Extension — event-driven check of the §5.3 linear-scaling assumption");
    for p in points {
        t.row(vec![
            crate::report::size_label(p.value_bytes),
            p.cores.to_string(),
            format!("{:.2}", p.simulated_tps / 1000.0),
            format!("{:.2}", p.linear_tps / 1000.0),
            format!("{:.2}", p.scaling_efficiency()),
            format!("{:.2}", p.wire_utilization),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_at_64b_saturating_at_256k() {
        let points = run(Jobs::SERIAL);
        let small_32 = points
            .iter()
            .find(|p| p.value_bytes == 64 && p.cores == 32)
            .expect("present");
        assert!(
            small_32.scaling_efficiency() > 0.85,
            "64 B should scale nearly linearly to 32 cores: {:.2}",
            small_32.scaling_efficiency()
        );
        let big_32 = points
            .iter()
            .find(|p| p.value_bytes == 256 << 10 && p.cores == 32)
            .expect("present");
        assert!(
            big_32.scaling_efficiency() < 0.75,
            "256 KB responses must saturate the port: {:.2}",
            big_32.scaling_efficiency()
        );
        assert!(big_32.wire_utilization > 0.6);
        assert!(table(&points).to_string().contains("efficiency"));
    }
}
