//! Figures 7 and 8: whole-server density vs. throughput and power vs.
//! throughput for every Mercury-n / Iridium-n configuration at 64 B GETs.

use crate::experiments::evaluation::{ConfigEval, Family};
use crate::report::TextTable;

/// One bar pair of Fig. 7 or Fig. 8.
#[derive(Debug, Clone, PartialEq)]
pub struct TradeoffPoint {
    /// Core label.
    pub core: String,
    /// `Mercury-n` / `Iridium-n`.
    pub config: String,
    /// Density, GB (Fig. 7's left axis).
    pub density_gb: f64,
    /// Wall power at 64 B, watts (Fig. 8's left axis).
    pub power_w: f64,
    /// Millions of TPS at 64 B (the right axis of both).
    pub mtps: f64,
}

/// A rendered figure panel (7a/7b or 8a/8b).
#[derive(Debug, Clone)]
pub struct TradeoffFigure {
    /// Panel title.
    pub name: String,
    /// Points, grouped by core label in Table 3 column order.
    pub points: Vec<TradeoffPoint>,
}

impl TradeoffFigure {
    /// Renders the panel as a table.
    pub fn table(&self, density_axis: bool) -> TextTable {
        let mut t = TextTable::new(vec![
            "core".into(),
            "config".into(),
            if density_axis {
                "density (GB)".into()
            } else {
                "power (W)".into()
            },
            "TPS @64B (M)".into(),
        ])
        .with_title(&self.name);
        for p in &self.points {
            t.row(vec![
                p.core.clone(),
                p.config.clone(),
                if density_axis {
                    format!("{:.0}", p.density_gb)
                } else {
                    format!("{:.0}", p.power_w)
                },
                format!("{:.2}", p.mtps),
            ]);
        }
        t
    }
}

fn collect(evals: &[ConfigEval], family: Family, name: &str) -> TradeoffFigure {
    TradeoffFigure {
        name: name.to_owned(),
        points: evals
            .iter()
            .filter(|e| e.family == family)
            .map(|e| TradeoffPoint {
                core: e.core_label.clone(),
                config: format!("{}-{}", e.family.name(), e.n),
                density_gb: e.at_64b.memory_gb,
                power_w: e.at_64b.power_w,
                mtps: e.at_64b.tps / 1e6,
            })
            .collect(),
    }
}

/// Figure 7: density vs. TPS (panels a = Mercury, b = Iridium).
pub fn fig7(evals: &[ConfigEval]) -> (TradeoffFigure, TradeoffFigure) {
    (
        collect(
            evals,
            Family::Mercury,
            "Fig. 7a — Mercury density vs. TPS @64B",
        ),
        collect(
            evals,
            Family::Iridium,
            "Fig. 7b — Iridium density vs. TPS @64B",
        ),
    )
}

/// Figure 8: power vs. TPS (panels a = Mercury, b = Iridium).
pub fn fig8(evals: &[ConfigEval]) -> (TradeoffFigure, TradeoffFigure) {
    (
        collect(
            evals,
            Family::Mercury,
            "Fig. 8a — Mercury power vs. TPS @64B",
        ),
        collect(
            evals,
            Family::Iridium,
            "Fig. 8b — Iridium power vs. TPS @64B",
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::evaluation::evaluate_a7;
    use crate::sweep::SweepEffort;
    use densekv_par::Jobs;

    #[test]
    fn a7_density_holds_while_tps_scales() {
        // Fig. 7's A7 panel: density stays near the port-cap maximum for
        // every n while TPS climbs with n.
        let evals = evaluate_a7(SweepEffort::quick(), Jobs::SERIAL);
        let (mercury, iridium) = fig7(&evals);
        assert_eq!(mercury.points.len(), 6);
        assert_eq!(iridium.points.len(), 6);

        let first = &mercury.points[0];
        let last = &mercury.points[5];
        assert!(last.mtps > first.mtps * 20.0, "TPS scales ~32x");
        assert!(
            last.density_gb > first.density_gb * 0.9,
            "A7 density barely drops at n=32"
        );

        // Iridium density dwarfs Mercury's at every n.
        for (m, i) in mercury.points.iter().zip(iridium.points.iter()) {
            assert!(i.density_gb > 4.0 * m.density_gb);
        }
    }

    #[test]
    fn fig8_power_grows_with_cores() {
        let evals = evaluate_a7(SweepEffort::quick(), Jobs::SERIAL);
        let (mercury, _) = fig8(&evals);
        let p1 = mercury.points[0].power_w;
        let p32 = mercury.points[5].power_w;
        assert!(p32 > p1 * 1.5, "more cores, more power: {p1} -> {p32}");
        let t = mercury.table(false);
        assert!(t.to_string().contains("power (W)"));
    }
}
