//! Tables 1–4 of the paper.

use densekv_baseline::specs::TABLE4_BASELINES;
use densekv_mem::technology::TABLE2;
use densekv_stack::components::TABLE1;

use crate::experiments::evaluation::{ConfigEval, Family, CORE_COUNTS};
use crate::report::{si, TextTable};

/// Table 1: power and area for the components of a 3D stack.
pub fn table1() -> TextTable {
    let mut t = TextTable::new(vec![
        "Component".into(),
        "Power (mW)".into(),
        "Area (mm^2)".into(),
    ])
    .with_title("Table 1 — Power and area for the components of a 3D stack");
    for c in TABLE1 {
        let power = if c.power_per_gbps {
            format!("{} (per GB/s)", c.power_mw)
        } else {
            format!("{}", c.power_mw)
        };
        t.row(vec![c.name.into(), power, format!("{:.2}", c.area_mm2)]);
    }
    t
}

/// Table 2: comparison of 3D-stacked DRAM to DIMM packages.
pub fn table2() -> TextTable {
    let mut t = TextTable::new(vec!["DRAM".into(), "BW (GB/s)".into(), "Capacity".into()])
        .with_title("Table 2 — Comparison of 3D-stacked DRAM to DIMM packages");
    for tech in TABLE2 {
        let capacity = if tech.capacity_mb >= 1024 {
            format!("{}GB", tech.capacity_mb / 1024)
        } else {
            format!("{}MB", tech.capacity_mb)
        };
        t.row(vec![
            tech.name.into(),
            format!("{:.1}", tech.bandwidth_gbps),
            capacity,
        ]);
    }
    t
}

/// Table 3: per-family panels of the 1.5U maximum configurations.
///
/// Input must come from
/// [`evaluate_all`](crate::experiments::evaluation::evaluate_all).
pub fn table3(evals: &[ConfigEval]) -> Vec<TextTable> {
    let mut core_labels: Vec<String> = Vec::new();
    for e in evals {
        if !core_labels.contains(&e.core_label) {
            core_labels.push(e.core_label.clone());
        }
    }
    let mut tables = Vec::new();
    for family in Family::ALL {
        for core in &core_labels {
            let mut t = TextTable::new(vec![
                "cores/stack".into(),
                "stacks".into(),
                "area (cm^2)".into(),
                "power (W)".into(),
                "density (GB)".into(),
                "max BW (GB/s)".into(),
                "limit".into(),
            ])
            .with_title(&format!(
                "Table 3 — 1.5U {} server, {} cores",
                family.name(),
                core
            ));
            for &n in &CORE_COUNTS {
                if let Some(e) = evals
                    .iter()
                    .find(|e| e.family == family && e.n == n && &e.core_label == core)
                {
                    t.row(vec![
                        n.to_string(),
                        e.plan.stacks.to_string(),
                        format!("{:.0}", e.at_64b.area_cm2),
                        format!("{:.0}", e.max_power_w),
                        format!("{:.0}", e.plan.density_gb()),
                        format!("{:.1}", e.max_mem_bw_gbps),
                        e.plan.limited_by.to_string(),
                    ]);
                }
            }
            tables.push(t);
        }
    }
    tables
}

/// One row of our reproduced Table 4.
#[derive(Debug, Clone, PartialEq)]
pub struct Table4Row {
    /// System name.
    pub name: String,
    /// Stacks (1 for the baselines).
    pub stacks: u32,
    /// Cores.
    pub cores: u32,
    /// Memory, GB.
    pub memory_gb: f64,
    /// Power, watts.
    pub power_w: f64,
    /// TPS, millions.
    pub mtps: f64,
    /// Thousand TPS per watt.
    pub ktps_per_watt: f64,
    /// Thousand TPS per GB.
    pub ktps_per_gb: f64,
    /// Bandwidth, GB/s.
    pub bandwidth_gbps: f64,
}

/// Table 4's data: measured Mercury/Iridium rows plus the published
/// baselines.
#[derive(Debug, Clone)]
pub struct Table4 {
    /// All rows in the paper's column order (Mercury n=8/16/32, Iridium
    /// n=8/16/32, Memcached 1.4/1.6/Bags, TSSP).
    pub rows: Vec<Table4Row>,
}

impl Table4 {
    /// Finds a row by name.
    pub fn row(&self, name: &str) -> Option<&Table4Row> {
        self.rows.iter().find(|r| r.name == name)
    }

    /// Renders the table.
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new(vec![
            "system".into(),
            "stacks".into(),
            "cores".into(),
            "memory (GB)".into(),
            "power (W)".into(),
            "TPS".into(),
            "KTPS/W".into(),
            "KTPS/GB".into(),
            "BW (GB/s)".into(),
        ])
        .with_title(
            "Table 4 — Comparison of A7-based Mercury and Iridium to prior art (64 B GETs)",
        );
        for r in &self.rows {
            t.row(vec![
                r.name.clone(),
                r.stacks.to_string(),
                r.cores.to_string(),
                format!("{:.0}", r.memory_gb),
                format!("{:.0}", r.power_w),
                si(r.mtps * 1e6),
                format!("{:.2}", r.ktps_per_watt),
                format!("{:.2}", r.ktps_per_gb),
                format!("{:.2}", r.bandwidth_gbps),
            ]);
        }
        t
    }
}

/// Builds Table 4 from an A7 evaluation grid
/// ([`evaluate_a7`](crate::experiments::evaluation::evaluate_a7) or the
/// full grid).
pub fn table4(evals: &[ConfigEval]) -> Table4 {
    let mut rows = Vec::new();
    for family in Family::ALL {
        for &n in &[8u32, 16, 32] {
            if let Some(e) = evals
                .iter()
                .find(|e| e.family == family && e.n == n && e.core_label.starts_with("A7"))
            {
                let r = &e.at_64b;
                rows.push(Table4Row {
                    name: format!("{}-{}", family.name(), n),
                    stacks: r.stacks,
                    cores: r.cores,
                    memory_gb: r.memory_gb,
                    power_w: r.power_w,
                    mtps: r.tps / 1e6,
                    ktps_per_watt: r.ktps_per_watt,
                    ktps_per_gb: r.ktps_per_gb,
                    // The paper's BW column is TPS x 64 B of request data.
                    bandwidth_gbps: r.tps * 64.0 / 1e9,
                });
            }
        }
    }
    for b in TABLE4_BASELINES {
        rows.push(Table4Row {
            name: b.name.to_owned(),
            stacks: 1,
            cores: b.cores,
            memory_gb: b.memory_gb,
            power_w: b.power_w,
            mtps: b.mtps,
            ktps_per_watt: b.ktps_per_watt(),
            ktps_per_gb: b.ktps_per_gb(),
            bandwidth_gbps: b.bandwidth_gbps,
        });
    }
    Table4 { rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::evaluation::evaluate_a7;
    use crate::sweep::SweepEffort;
    use densekv_par::Jobs;

    #[test]
    fn static_tables_have_paper_rows() {
        let t1 = table1();
        assert_eq!(t1.row_count(), 7);
        assert!(t1.to_string().contains("A7@1GHz"));
        let t2 = table2();
        assert_eq!(t2.row_count(), 7);
        assert!(t2.to_string().contains("HMC I"));
    }

    #[test]
    fn table4_rows_and_shape() {
        let evals = evaluate_a7(SweepEffort::quick(), Jobs::SERIAL);
        let t4 = table4(&evals);
        assert_eq!(t4.rows.len(), 10);

        let mercury32 = t4.row("Mercury-32").expect("row");
        let bags = t4.row("Memcached Bags").expect("row");
        // The paper's headline relationships, as orderings.
        assert!(mercury32.mtps > 5.0 * bags.mtps, "TPS >> Bags");
        assert!(mercury32.ktps_per_watt > 3.0 * bags.ktps_per_watt);
        assert!(mercury32.memory_gb > 2.0 * bags.memory_gb);

        let iridium32 = t4.row("Iridium-32").expect("row");
        assert!(iridium32.memory_gb > 10.0 * bags.memory_gb, "14x density");
        assert!(
            iridium32.ktps_per_gb < bags.ktps_per_gb,
            "the 2.8x TPS/GB price"
        );

        let rendered = t4.table().to_string();
        assert!(rendered.contains("TSSP"));
    }
}
