//! Extension experiments: cluster-scale tail latency and failover.
//!
//! The paper evaluates one stack at a time and argues density at the
//! rack level (§3.8, §6). These experiments deploy many stacks behind a
//! consistent-hash DHT — every core an independent Memcached node, the
//! paper's deployment model — and measure what a *client* of the whole
//! cluster sees:
//!
//! * [`cluster_tail`] — p50/p95/p99 response time versus offered load
//!   for Mercury-A7, Mercury-A15, Iridium-A7, Helios-A7 (a hybrid
//!   DRAM-tier stack), and a Bags-class Xeon baseline, with the
//!   per-core service times calibrated from the execution-driven
//!   [`CoreSim`].
//! * [`cluster_failover`] — the miss-rate and latency transient when
//!   stacks die mid-run and their keys remap to survivors.
//!
//! [`CoreSim`]: crate::sim::CoreSim

use densekv_baseline::BAGS;
use densekv_cluster::{
    effective_capacity, run as run_cluster, ClusterConfig, ClusterResult, FaultPlan, ServiceProfile,
};
use densekv_net::frame::MessageSizes;
use densekv_net::wire_bytes_for_payload;
use densekv_par::{par_map, Jobs};
use densekv_sim::stats::LatencyHistogram;
use densekv_sim::{Duration, SimTime};
use densekv_telemetry::{SloConfig, SloSnapshot, SloTracker};
use densekv_workload::{key_bytes, Op, Request};

use crate::report::TextTable;
use crate::sim::{CoreSim, CoreSimConfig};
use crate::sweep::SweepEffort;

/// Keys are 16 bytes in every workload of this repo.
const KEY_LEN: u64 = 16;

/// The cluster experiments run the paper's headline 64 B GET point.
const VALUE_BYTES: u64 = 64;

/// MAC store-and-forward latency, as in the stack simulator.
const MAC_DELAY: Duration = Duration::from_nanos(500);

/// Offered-load fractions of the cluster's *effective* capacity — the
/// load at which the Zipf-hottest core saturates. Under skewed
/// popularity that bound sits far below the aggregate `nodes /
/// hit_service` figure, so normalizing to it keeps every point stable
/// while still pushing the hot core to 90% utilization.
const LOAD_POINTS: [f64; 4] = [0.2, 0.45, 0.7, 0.9];

/// Mean server-side time of `count` executions of `request`.
fn mean_server(core: &mut CoreSim, request: &Request, count: u32) -> Duration {
    let mut total = Duration::ZERO;
    for _ in 0..count {
        total += core.execute(request).server;
    }
    total / u64::from(count.max(1))
}

/// Calibrates a cluster [`ServiceProfile`] from the execution-driven
/// core simulator: hit/miss/fill service times come from real request
/// executions, wire times from the shared 10 GbE port's serialization
/// of the GET message sizes.
pub fn calibrate(label: &str, config: &CoreSimConfig, effort: SweepEffort) -> ServiceProfile {
    let mut core = CoreSim::new(config.clone()).expect("valid core config");
    core.preload(VALUE_BYTES, 64).expect("population fits");

    let hot = Request {
        op: Op::Get,
        key: key_bytes(0),
        value_bytes: VALUE_BYTES,
    };
    let absent = Request {
        op: Op::Get,
        key: key_bytes(9_999_999),
        value_bytes: VALUE_BYTES,
    };
    let put = Request {
        op: Op::Put,
        key: key_bytes(1),
        value_bytes: VALUE_BYTES,
    };

    // Warm caches and TLBs before measuring steady-state service times.
    mean_server(&mut core, &hot, effort.warmup.max(1));
    let hit_service = mean_server(&mut core, &hot, effort.measured.max(1));
    let miss_service = mean_server(&mut core, &absent, effort.measured.max(1));
    let fill_service = mean_server(&mut core, &put, effort.measured.max(1));

    let sizes = MessageSizes::get(KEY_LEN, VALUE_BYTES);
    ServiceProfile {
        label: label.to_owned(),
        hit_service,
        miss_service,
        fill_service,
        req_wire: config
            .wire
            .serialization_time(wire_bytes_for_payload(sizes.request_payload)),
        resp_wire: config
            .wire
            .serialization_time(wire_bytes_for_payload(sizes.response_payload)),
        link_delay: config.wire.propagation + MAC_DELAY,
        client_overhead: config.client_overhead,
    }
}

/// A Bags-class Xeon baseline profile, derived analytically from the
/// Table 4 row: 16 cores sustaining 3.15 MTPS puts the per-core GET
/// service time near 5 µs; misses skip the value copy and fills cost
/// about one hit.
pub fn xeon_profile() -> ServiceProfile {
    let per_core_tps = BAGS.mtps * 1e6 / f64::from(BAGS.cores);
    let hit_service = Duration::from_nanos_f64(1e9 / per_core_tps);
    let reference = CoreSimConfig::mercury_a7();
    let sizes = MessageSizes::get(KEY_LEN, VALUE_BYTES);
    ServiceProfile {
        label: "Xeon (Bags)".to_owned(),
        hit_service,
        miss_service: hit_service * 6 / 10,
        fill_service: hit_service,
        req_wire: reference
            .wire
            .serialization_time(wire_bytes_for_payload(sizes.request_payload)),
        resp_wire: reference
            .wire
            .serialization_time(wire_bytes_for_payload(sizes.response_payload)),
        link_delay: reference.wire.propagation + MAC_DELAY,
        client_overhead: reference.client_overhead,
    }
}

/// One design under test: its calibrated profile and how many cores
/// each network port serves.
struct Design {
    profile: ServiceProfile,
    cores_per_stack: u32,
}

/// Stack-level DRAM tier the routable Helios design carries (256 MB, a
/// 32 MB slice per core at 8 cores per stack).
const HELIOS_TIER_BYTES: u64 = 256 << 20;

/// The comparison set: four stacked designs at 8 cores per port and a
/// 16-core Xeon box per port. Each design's core calibration replays
/// its own simulator, so the calibrations fan out as worker tasks.
fn designs(effort: SweepEffort, jobs: Jobs) -> Vec<Design> {
    let stacked: [(&str, CoreSimConfig); 4] = [
        ("Mercury A7", CoreSimConfig::mercury_a7()),
        (
            "Mercury A15",
            CoreSimConfig::mercury(
                densekv_cpu::CoreConfig::a15_1ghz(),
                true,
                Duration::from_nanos(10),
            ),
        ),
        ("Iridium A7", CoreSimConfig::iridium_a7()),
        ("Helios A7", CoreSimConfig::helios_a7(HELIOS_TIER_BYTES / 8)),
    ];
    let mut designs: Vec<Design> = par_map(jobs, &stacked, |(label, config)| Design {
        profile: calibrate(label, config, effort),
        cores_per_stack: 8,
    });
    designs.push(Design {
        profile: xeon_profile(),
        cores_per_stack: 16,
    });
    designs
}

/// Scales the cluster request counts from the sweep effort.
fn request_budget(effort: SweepEffort) -> (u32, u32) {
    (effort.measured * 60, effort.warmup * 5)
}

/// One load point of the cluster tail experiment.
#[derive(Debug, Clone)]
pub struct TailPoint {
    /// Design label.
    pub design: String,
    /// Offered load as a fraction of the cluster's hit capacity.
    pub load_fraction: f64,
    /// Offered rate, logical requests/second.
    pub rate: f64,
    /// Median response time.
    pub p50: Duration,
    /// 95th-percentile response time.
    pub p95: Duration,
    /// 99th-percentile response time.
    pub p99: Duration,
    /// Busiest core's utilization.
    pub peak_utilization: f64,
}

/// Runs the tail experiment: each design's cluster at the
/// [`LOAD_POINTS`] fractions of its own hit capacity (8 stacks, single
/// GETs, Zipf keys).
pub fn cluster_tail(effort: SweepEffort, jobs: Jobs) -> Vec<TailPoint> {
    let (requests, warmup) = request_budget(effort);
    let designs = designs(effort, jobs);
    let tasks: Vec<(usize, f64)> = (0..designs.len())
        .flat_map(|di| LOAD_POINTS.into_iter().map(move |load| (di, load)))
        .collect();
    par_map(jobs, &tasks, |&(di, load)| {
        let design = &designs[di];
        let mut config = ClusterConfig::new(design.profile.clone(), 1.0);
        config.topology.cores_per_stack = design.cores_per_stack;
        config.requests = requests;
        config.warmup = warmup;
        config.workload.rate_per_sec = load * effective_capacity(&config);
        let result = run_cluster(&config);
        TailPoint {
            design: design.profile.label.clone(),
            load_fraction: load,
            rate: result.offered_rate,
            p50: result.latency.percentile(0.50).expect("samples"),
            p95: result.latency.percentile(0.95).expect("samples"),
            p99: result.latency.percentile(0.99).expect("samples"),
            peak_utilization: result.peak_core_utilization,
        }
    })
}

/// Renders the tail experiment table.
pub fn tail_table(points: &[TailPoint]) -> TextTable {
    let mut t = TextTable::new(vec![
        "design".into(),
        "load".into(),
        "rate (KTPS)".into(),
        "p50".into(),
        "p95".into(),
        "p99".into(),
        "peak core util".into(),
    ])
    .with_title("Extension — cluster tail latency (8 stacks, DHT-routed Zipf GETs)");
    for p in points {
        t.row(vec![
            p.design.clone(),
            format!("{:.0}%", p.load_fraction * 100.0),
            format!("{:.0}", p.rate / 1000.0),
            p.p50.to_string(),
            p.p95.to_string(),
            p.p99.to_string(),
            format!("{:.0}%", p.peak_utilization * 100.0),
        ]);
    }
    t
}

/// The failover experiment's outcome: the run itself plus the
/// configuration that produced it (for reporting).
#[derive(Debug, Clone)]
pub struct FailoverOutcome {
    /// The cluster run, including the bucketed timeline and remap event.
    pub result: ClusterResult,
    /// The configuration used.
    pub config: ClusterConfig,
}

/// Runs the failover experiment: a Mercury-A7 cluster at 30% load loses
/// 2 of its 8 stacks mid-run; the timeline shows the cold-miss spike
/// and the read-through recovery.
pub fn cluster_failover(effort: SweepEffort) -> FailoverOutcome {
    let (requests, warmup) = request_budget(effort);
    let profile = calibrate("Mercury A7", &CoreSimConfig::mercury_a7(), effort);
    let mut config = ClusterConfig::new(profile, 1.0);
    config.requests = requests * 2;
    config.warmup = warmup;
    // A smaller population than the tail runs so the re-warm transient
    // completes within the simulated window.
    config.workload.key_population = 20_000;
    // Half the effective capacity: the survivors absorb the dead
    // stacks' arcs (a 8/6 load increase) without saturating, so the
    // timeline settles back to a steady state.
    config.workload.rate_per_sec = 0.5 * effective_capacity(&config);
    let expected_span = f64::from(config.requests + config.warmup) / config.workload.rate_per_sec;
    config.fault = Some(FaultPlan {
        at: SimTime::ZERO + Duration::from_secs_f64(0.3 * expected_span),
        kill_stacks: vec![0, 1],
    });
    config.timeline_bucket = Duration::from_secs_f64(expected_span / 24.0);
    let result = run_cluster(&config);
    FailoverOutcome { result, config }
}

/// Short (fast-burn) window of the failover SLO tracker, in timeline
/// buckets.
const BURN_SHORT_WINDOWS: usize = 2;

/// Long (sustained-burn) window of the failover SLO tracker, in
/// timeline buckets.
const BURN_LONG_WINDOWS: usize = 8;

/// Runs the failover timeline through a [`SloTracker`], one timeline
/// bucket per SLO window.
///
/// The objective is *self-calibrated*: the p95 of the pre-fault buckets
/// against a 95% target, so the steady state burns its error budget at
/// rate ≈ 1.0 by construction and the post-kill latency spike reads
/// directly as a burn-rate excursion. Returns the (clamped) config and
/// one snapshot per bucket, aligned with `outcome.result.timeline`.
#[must_use]
pub fn failover_burn(outcome: &FailoverOutcome) -> (SloConfig, Vec<SloSnapshot>) {
    let timeline = &outcome.result.timeline;
    let fault_bucket = match &outcome.result.remap {
        Some(r) => timeline.bucket_index(r.at).min(timeline.len()),
        None => timeline.len(),
    };
    let mut steady = LatencyHistogram::new();
    for b in &timeline[..fault_bucket] {
        steady.merge(&b.latency);
    }
    let objective = steady
        .percentile(0.95)
        .unwrap_or_else(|| Duration::from_micros(500));
    let mut tracker = SloTracker::new(SloConfig {
        objective,
        target: 0.95,
        short_windows: BURN_SHORT_WINDOWS,
        long_windows: BURN_LONG_WINDOWS,
        alert_burn: 2.0,
    });
    let mut burns = Vec::with_capacity(timeline.len());
    for b in timeline.iter() {
        let total = b.completed();
        let good = (b.latency.fraction_within(objective) * total as f64).round() as u64;
        tracker.observe_window(total, total - good.min(total));
        burns.push(tracker.snapshot());
    }
    (*tracker.config(), burns)
}

/// Renders the failover timeline table, including the per-bucket SLO
/// burn rate from [`failover_burn`].
pub fn failover_table(outcome: &FailoverOutcome) -> TextTable {
    let remap = outcome.result.remap.as_ref();
    let title = match remap {
        Some(r) => format!(
            "Extension — failover transient (killed stacks {:?} at {}, {:.1}% of keys remapped)",
            r.killed,
            r.at.elapsed_since(SimTime::ZERO),
            r.key_fraction_remapped * 100.0
        ),
        None => "Extension — failover transient".to_owned(),
    };
    let (slo, burns) = failover_burn(outcome);
    let mut t = TextTable::new(vec![
        "t".into(),
        "completed".into(),
        "hit rate".into(),
        "p50".into(),
        "p99".into(),
        format!("burn (slo {})", slo.objective),
        "alert".into(),
    ])
    .with_title(&title);
    for (bucket, burn) in outcome.result.timeline.iter().zip(&burns) {
        if bucket.completed() == 0 {
            continue;
        }
        t.row(vec![
            bucket.start.elapsed_since(SimTime::ZERO).to_string(),
            bucket.completed().to_string(),
            format!("{:.2}%", bucket.hit_rate() * 100.0),
            bucket
                .latency
                .percentile(0.50)
                .expect("nonempty")
                .to_string(),
            bucket
                .latency
                .percentile(0.99)
                .expect("nonempty")
                .to_string(),
            format!("{:.2}", burn.short_burn),
            if burn.alerting { "ALERT" } else { "" }.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use densekv_dht::{remapped_fraction, ConsistentHashRing};

    #[test]
    fn calibrated_profiles_are_ordered_sensibly() {
        let effort = SweepEffort::quick();
        let a7 = calibrate("Mercury A7", &CoreSimConfig::mercury_a7(), effort);
        let a15 = calibrate(
            "Mercury A15",
            &CoreSimConfig::mercury(
                densekv_cpu::CoreConfig::a15_1ghz(),
                true,
                Duration::from_nanos(10),
            ),
            effort,
        );
        let iridium = calibrate("Iridium A7", &CoreSimConfig::iridium_a7(), effort);
        let helios = calibrate(
            "Helios A7",
            &CoreSimConfig::helios_a7(HELIOS_TIER_BYTES / 8),
            effort,
        );
        // A GET that hits dominates its miss (the miss skips the copy),
        // and the wider A15 beats the A7 on the same requests.
        assert!(a7.hit_service > a7.miss_service);
        assert!(a15.hit_service < a7.hit_service);
        // Flash reads put Iridium's hit far above Mercury's; a warm
        // Helios tier serves the calibration key at DRAM speed.
        assert!(iridium.hit_service > a7.hit_service);
        assert!(helios.hit_service < iridium.hit_service);
        // Wire times are design-independent (same port, same bytes).
        assert_eq!(a7.req_wire, iridium.req_wire);
        assert!(
            a7.resp_wire > a7.req_wire,
            "64 B response outweighs request"
        );
    }

    #[test]
    fn tail_experiment_shape_and_determinism() {
        let points = cluster_tail(SweepEffort::quick(), Jobs::SERIAL);
        assert_eq!(points.len(), 5 * LOAD_POINTS.len());
        for design in [
            "Mercury A7",
            "Mercury A15",
            "Iridium A7",
            "Helios A7",
            "Xeon (Bags)",
        ] {
            let series: Vec<_> = points.iter().filter(|p| p.design == design).collect();
            assert_eq!(series.len(), LOAD_POINTS.len());
            // Queueing: the tail only grows with load.
            assert!(series.windows(2).all(|w| w[1].p99 >= w[0].p99), "{design}");
        }
        // Same seed, same percentiles — and jobs-invariant.
        let again = cluster_tail(SweepEffort::quick(), Jobs::new(3));
        for (a, b) in points.iter().zip(&again) {
            assert_eq!(a.p50, b.p50);
            assert_eq!(a.p99, b.p99);
        }
        assert!(tail_table(&points).to_string().contains("p99"));
    }

    #[test]
    fn failover_transient_recovers_and_matches_dht_estimate() {
        let outcome = cluster_failover(SweepEffort::quick());
        let remap = outcome.result.remap.as_ref().expect("fault ran");

        // The exact per-key remap fraction must agree with the sampled
        // DHT estimate for the same before/after rings.
        let topo = outcome.config.topology;
        let mut before = ConsistentHashRing::new(topo.vnodes);
        for stack in 0..topo.stacks {
            for core in 0..topo.cores_per_stack {
                before.add_node(topo.node_id(stack, core));
            }
        }
        let mut after = before.clone();
        for &stack in &remap.killed {
            for core in 0..topo.cores_per_stack {
                after.remove_node(topo.node_id(stack, core));
            }
        }
        let estimate = remapped_fraction(&before, &after, 50_000, 11);
        assert!(
            (estimate - remap.key_fraction_remapped).abs() < 0.02,
            "sampled {estimate:.3} vs exact {:.3}",
            remap.key_fraction_remapped
        );

        // The transient: hit rate dips after the kill, then recovers.
        let bucket_ps = outcome.config.timeline_bucket.as_ps();
        let fault_bucket = (remap.at.as_ps() / bucket_ps) as usize;
        let timeline = &outcome.result.timeline;
        let dip = timeline[fault_bucket..]
            .iter()
            .map(|b| b.hit_rate())
            .fold(1.0f64, f64::min);
        let last = timeline.last().expect("nonempty").hit_rate();
        assert!(dip < 0.9, "kill should dent hit rate, dip={dip:.3}");
        assert!(
            last > dip,
            "hit rate should recover, dip={dip:.3} last={last:.3}"
        );
        assert!(failover_table(&outcome).to_string().contains("hit rate"));

        // The SLO burn column: calibrated to the pre-fault p95, so the
        // steady state burns ≈ 1.0, the kill spikes it past the 2.0
        // alert threshold, and the re-warm brings it back down.
        let (slo, burns) = failover_burn(&outcome);
        assert_eq!(burns.len(), timeline.len());
        assert!((slo.target - 0.95).abs() < 1e-12);
        let pre_peak = burns[..fault_bucket]
            .iter()
            .map(|s| s.short_burn)
            .fold(0.0f64, f64::max);
        let post_peak = burns[fault_bucket..]
            .iter()
            .map(|s| s.short_burn)
            .fold(0.0f64, f64::max);
        assert!(
            pre_peak < 2.0,
            "steady state must not alert, pre-fault peak burn {pre_peak:.2}"
        );
        assert!(
            post_peak >= 2.0 && post_peak > 2.0 * pre_peak,
            "kill should spike the burn, pre {pre_peak:.2} post {post_peak:.2}"
        );
        assert!(
            burns[fault_bucket..].iter().any(|s| s.alerting),
            "a sustained spike should trip the multi-window alert"
        );
        // Quick effort only partially re-warms, so ask for a clear
        // decline from the peak rather than a full return to 1.0.
        let settled = burns.last().expect("nonempty").short_burn;
        assert!(
            settled < 0.75 * post_peak,
            "burn should recover, settled {settled:.2} peak {post_peak:.2}"
        );
        let rendered = failover_table(&outcome).to_string();
        assert!(rendered.contains("burn"), "{rendered}");
        assert!(rendered.contains("ALERT"), "{rendered}");
    }
}
