//! Extension experiment: multi-GET batching.
//!
//! Fig. 4 shows ~87 % of a small request is network-stack time, which is
//! exactly what Memcached's `get k1 k2 …` batching amortizes. This
//! experiment measures per-key throughput versus batch size on both
//! architectures — the "free" throughput the paper's single-GET sweeps
//! leave on the table.

use densekv_par::{par_map, Jobs};
use densekv_workload::key_bytes;

use crate::report::TextTable;
use crate::sim::{CoreSim, CoreSimConfig};

/// One batch-size measurement.
#[derive(Debug, Clone)]
pub struct MultigetPoint {
    /// Architecture label.
    pub system: &'static str,
    /// Keys per request.
    pub batch: u32,
    /// Effective per-key throughput, keys/second.
    pub keys_per_sec: f64,
    /// Speedup over batch = 1.
    pub speedup: f64,
}

/// Batch sizes measured.
pub const BATCHES: [u32; 5] = [1, 2, 4, 16, 64];

/// Runs the batching sweep at 64 B values. Each (system, batch) cell
/// builds and warms its own core so the cells are independent worker
/// tasks; the batch = 1 cell of each system anchors the speedup column
/// after the join.
pub fn run(jobs: Jobs) -> Vec<MultigetPoint> {
    let systems: [(&'static str, CoreSimConfig); 2] = [
        ("Mercury A7", CoreSimConfig::mercury_a7()),
        ("Iridium A7", CoreSimConfig::iridium_a7()),
    ];
    let tasks: Vec<(usize, u32)> = (0..systems.len())
        .flat_map(|si| BATCHES.into_iter().map(move |batch| (si, batch)))
        .collect();
    let rates = par_map(jobs, &tasks, |&(si, batch)| {
        let mut core = CoreSim::new(systems[si].1.clone()).expect("valid configuration");
        core.preload(64, 128).expect("fits");
        let keys: Vec<Vec<u8>> = (0..u64::from(batch)).map(key_bytes).collect();
        for _ in 0..120 {
            core.execute_multiget(&keys, 64);
        }
        let mut total = densekv_sim::Duration::ZERO;
        let measured = 40;
        for _ in 0..measured {
            let (timing, hits) = core.execute_multiget(&keys, 64);
            assert_eq!(hits, batch, "preloaded keys must hit");
            total += timing.rtt;
        }
        let per_key = total.as_secs_f64() / f64::from(measured) / f64::from(batch);
        1.0 / per_key
    });
    tasks
        .iter()
        .zip(&rates)
        .enumerate()
        .map(|(i, (&(si, batch), &keys_per_sec))| {
            // The first cell of each system row is its batch = 1 baseline.
            let baseline = rates[i / BATCHES.len() * BATCHES.len()];
            MultigetPoint {
                system: systems[si].0,
                batch,
                keys_per_sec,
                speedup: keys_per_sec / baseline,
            }
        })
        .collect()
}

/// Renders the batching table.
pub fn table(points: &[MultigetPoint]) -> TextTable {
    let mut t = TextTable::new(vec![
        "batch".into(),
        "Mercury keys/s (K)".into(),
        "Mercury speedup".into(),
        "Iridium keys/s (K)".into(),
        "Iridium speedup".into(),
    ])
    .with_title("Extension — multi-GET batching (64 B values, per-key throughput)");
    for batch in BATCHES {
        let find = |system: &str| {
            points
                .iter()
                .find(|p| p.system == system && p.batch == batch)
        };
        if let (Some(m), Some(i)) = (find("Mercury A7"), find("Iridium A7")) {
            t.row(vec![
                batch.to_string(),
                format!("{:.2}", m.keys_per_sec / 1000.0),
                format!("{:.2}x", m.speedup),
                format!("{:.2}", i.keys_per_sec / 1000.0),
                format!("{:.2}x", i.speedup),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batching_amortizes_monotonically() {
        let points = run(Jobs::SERIAL);
        assert_eq!(points.len(), 10);
        for system in ["Mercury A7", "Iridium A7"] {
            let series: Vec<_> = points.iter().filter(|p| p.system == system).collect();
            for pair in series.windows(2) {
                assert!(
                    pair[1].keys_per_sec > pair[0].keys_per_sec * 0.98,
                    "{system}: batching must not hurt ({} -> {})",
                    pair[0].keys_per_sec,
                    pair[1].keys_per_sec
                );
            }
        }
        // Mercury amortizes deeply (network dominates); Iridium caps
        // early because per-key flash reads don't batch away.
        let last = |system: &str| {
            points
                .iter()
                .rfind(|p| p.system == system)
                .expect("nonempty")
                .speedup
        };
        assert!(
            last("Mercury A7") > 2.5,
            "Mercury: {:.2}",
            last("Mercury A7")
        );
        assert!(
            last("Iridium A7") > 1.5,
            "Iridium: {:.2}",
            last("Iridium A7")
        );
        assert!(
            last("Mercury A7") > last("Iridium A7"),
            "flash bounds Iridium's batching gains"
        );
        assert_eq!(table(&points).row_count(), BATCHES.len());
    }
}
