//! Extension experiment: the Helios DRAM-tier size sweep.
//!
//! The paper stops at two extremes — Mercury (all 3D DRAM, fast but
//! 4 GB per stack) and Iridium (all flash, 19.8 GB but tail latencies
//! in the hundreds of microseconds). This experiment sweeps the third
//! design between them: a Helios stack whose DRAM tier grows from
//! 64 MB to 1 GB over the same Iridium flash array, measured on the
//! Fig. 5/6 axes (latency percentiles per request) plus Table-4-style
//! efficiency columns.
//!
//! The tier hit rate is *not* a dial: every point replays a named
//! Facebook ETC-style Zipf stream ([`MixedWorkload::etc_fixed_size`])
//! against the simulated cache, so skew sensitivity falls out of the
//! reference stream. A second low-skew stream of the same shape shows
//! the Zipf dependence directly. Every point carries both the analytic
//! efficiency (per-tier Table 1 pricing via
//! [`stack_power_split`]) and a measured one integrated from the
//! event-driven energy meter of the same replay.

use densekv_cpu::CoreConfig;
use densekv_par::{par_map, Jobs};
use densekv_server::{stack_working_point, PerCorePerf};
use densekv_sim::Duration;
use densekv_stack::power::stack_power_split;
use densekv_stack::StackConfig;
use densekv_telemetry::Telemetry;
use densekv_workload::{MixedWorkload, Request, RequestGenerator, ETC_ZIPF_ALPHA};

use crate::energy::run_energy_observed;
use crate::report::TextTable;
use crate::sim::{CoreSim, CoreSimConfig};
use crate::sweep::SweepEffort;

/// Cores per stack, as in the headline Mercury-32/Iridium-32 designs.
pub const STACK_CORES: u32 = 32;

/// Stack-level DRAM-tier sizes swept, MB. Each of the 32 cores owns a
/// 1/32 slice, so the per-core tiers run 2–32 MB.
pub const TIER_SWEEP_MB: &[u64] = &[64, 128, 256, 512, 1024];

/// Value size every stream fixes (a mid-weight ETC object), so the tier
/// size is the only axis that moves within a workload.
pub const VALUE_BYTES: u64 = 2048;

/// One (workload, design) point of the tier sweep.
#[derive(Debug, Clone)]
pub struct HybridPoint {
    /// Workload label (cites the named stream).
    pub workload: String,
    /// Design name: `Mercury-32`, `Iridium-32`, or `Helios-32`.
    pub family: String,
    /// Stack-level DRAM-tier size, MB (Mercury's whole DRAM for the
    /// Mercury baseline; 0 for Iridium).
    pub dram_tier_mb: u64,
    /// Measured requests behind the percentiles.
    pub requests: u64,
    /// DRAM-tier hit rate over the measured window (1 for Mercury,
    /// 0 for Iridium — their "tier" is the whole device).
    pub tier_hit_rate: f64,
    /// Mean RTT, µs.
    pub mean_rtt_us: f64,
    /// Median RTT, µs.
    pub p50_us: f64,
    /// 95th-percentile RTT, µs.
    pub p95_us: f64,
    /// 99th-percentile RTT, µs.
    pub p99_us: f64,
    /// Stack throughput at the wire-derated working point, TPS.
    pub tps: f64,
    /// Stack DRAM-tier bandwidth after the derate, GB/s.
    pub dram_gbps: f64,
    /// Stack flash-array bandwidth after the derate, GB/s.
    pub flash_gbps: f64,
    /// Store capacity per stack, paper GB.
    pub capacity_gb: f64,
    /// Analytic stack power at per-tier Table 1 pricing, watts.
    pub stack_w_analytic: f64,
    /// Measured stack power integrated from the energy meter, watts.
    pub stack_w_measured: f64,
    /// DRAM-tier share of the analytic memory power, watts.
    pub dram_w: f64,
    /// Flash share of the analytic memory power, watts.
    pub flash_w: f64,
    /// Analytic efficiency, thousand TPS per watt.
    pub ktps_per_watt: f64,
    /// Measured efficiency from accumulated joules, thousand TPS/W.
    pub measured_ktps_per_watt: f64,
    /// Mean measured joules per operation (one core).
    pub j_per_op: f64,
    /// Memory share of the per-op joules.
    pub memory_j_per_op: f64,
    /// FTL pages relocated by garbage collection in the window.
    pub gc_moved_pages: u64,
    /// FTL blocks erased by garbage collection in the window.
    pub gc_erased_blocks: u64,
    /// Dirty pages the write buffer flushed to flash in the window.
    pub writebacks: u64,
    /// Programs the write buffer absorbed by coalescing in the window.
    pub programs_coalesced: u64,
}

/// Per-run request counts: a tier sweep needs enough traffic to warm a
/// multi-megabyte cache, so the base [`SweepEffort`] counts are scaled
/// up and the key population is sized to a working set (~4 MB/core
/// quick, ~32 MB/core full) that straddles the per-core tier slices.
fn shape(effort: SweepEffort) -> (u64, u32, u32, Vec<u64>) {
    let quick = effort.measured < SweepEffort::full().measured;
    if quick {
        (2048, 1200, 300, vec![64, 256, 1024])
    } else {
        (16384, 6000, 2000, TIER_SWEEP_MB.to_vec())
    }
}

/// The two reference streams: the named ETC preset and a low-skew
/// control of identical shape, both at [`VALUE_BYTES`].
fn streams() -> Vec<(String, f64)> {
    vec![
        (format!("ETC-like(zipf {ETC_ZIPF_ALPHA})"), ETC_ZIPF_ALPHA),
        ("low-skew(zipf 0.60)".to_owned(), 0.60),
    ]
}

fn workload_for(alpha: f64, keys: u64, label: &str) -> MixedWorkload {
    MixedWorkload::new(
        keys as usize,
        alpha,
        densekv_workload::ETC_GET_FRACTION,
        &[(VALUE_BYTES, 1.0)],
        0x048E_1105 ^ keys,
        label,
    )
}

/// Runs one design under one stream and summarizes it. `shape` is the
/// `(keys, warmup, measured)` triple from [`shape`].
fn measure_design(
    workload: &str,
    alpha: f64,
    shape: (u64, u32, u32),
    config: &CoreSimConfig,
    stack: &StackConfig,
    tier_mb: u64,
) -> HybridPoint {
    let (keys, warmup, measured) = shape;
    let mut sized = config.clone();
    sized.store_bytes = sized
        .store_bytes
        .max((VALUE_BYTES + 4096) * keys * 2)
        .max(16 << 20);
    let mut core = CoreSim::new(sized).expect("valid configuration");
    core.preload(VALUE_BYTES, keys).expect("preload fits");

    let mut gen = workload_for(alpha, keys, workload);
    for _ in 0..warmup {
        core.execute(&gen.next_request());
    }
    core.reset_counters();
    let tier_before = core.tier_stats();

    let requests: Vec<Request> = (0..measured).map(|_| gen.next_request()).collect();
    let mut tele = Telemetry::disabled();
    let run = run_energy_observed(
        &mut core,
        &requests,
        &mut tele,
        true,
        Duration::from_micros(500),
    );

    let secs = run.elapsed.as_secs_f64();
    let (dram_bytes, flash_bytes) = core.device_tier_bytes();
    let perf = PerCorePerf {
        tps: run.measured_tps(),
        mem_gbps: core.device_bytes() as f64 / secs / 1e9,
        wire_gbps: core.wire_bytes() as f64 / secs / 1e9,
    };
    let point = stack_working_point(STACK_CORES, perf);
    let scale = f64::from(STACK_CORES) * point.derate;
    let dram_gbps = dram_bytes as f64 / secs / 1e9 * scale;
    let flash_gbps = flash_bytes as f64 / secs / 1e9 * scale;

    let power = stack_power_split(stack, dram_gbps, flash_gbps);
    let (dram_rate, flash_rate) = densekv_stack::power::tier_rates(stack);
    let stack_w_analytic = power.total_w();
    let stack_w_measured = run.measured_stack_watts(STACK_CORES, point.derate);
    let measured_tps = run.measured_stack_tps(STACK_CORES, point.derate);

    let tier_hit_rate = match (tier_before, core.tier_stats()) {
        (Some(before), Some(after)) => {
            let hits = after.hits - before.hits;
            let total = hits + (after.misses - before.misses);
            if total > 0 {
                hits as f64 / total as f64
            } else {
                0.0
            }
        }
        // Single-tier baselines: Mercury serves everything from DRAM,
        // Iridium everything from flash.
        _ => {
            if flash_bytes == 0 {
                1.0
            } else {
                0.0
            }
        }
    };
    let tier_delta =
        |f: fn(&densekv_hybrid::TierSnapshot) -> u64| match (&tier_before, core.tier_stats()) {
            (Some(b), Some(a)) => f(&a) - f(b),
            _ => 0,
        };

    let us = |q: f64| {
        run.latency
            .percentile(q)
            .unwrap_or(Duration::ZERO)
            .as_secs_f64()
            * 1e6
    };
    HybridPoint {
        workload: workload.to_owned(),
        family: stack.name(),
        dram_tier_mb: tier_mb,
        requests: run.requests,
        tier_hit_rate,
        mean_rtt_us: secs / run.requests.max(1) as f64 * 1e6,
        p50_us: us(0.50),
        p95_us: us(0.95),
        p99_us: us(0.99),
        tps: point.tps,
        dram_gbps,
        flash_gbps,
        capacity_gb: stack.memory.nominal_capacity_gb(),
        stack_w_analytic,
        stack_w_measured,
        dram_w: dram_rate * dram_gbps / 1000.0,
        flash_w: flash_rate * flash_gbps / 1000.0,
        ktps_per_watt: point.tps / 1000.0 / stack_w_analytic,
        measured_ktps_per_watt: measured_tps / 1000.0 / stack_w_measured,
        j_per_op: run.j_per_op(),
        memory_j_per_op: run.per_op.memory_j,
        gc_moved_pages: tier_delta(|s| s.gc_moved_pages),
        gc_erased_blocks: tier_delta(|s| s.gc_erased_blocks),
        writebacks: tier_delta(|s| s.writebacks_flushed),
        programs_coalesced: tier_delta(|s| s.programs_coalesced),
    }
}

/// Sweeps the tier sizes against the Mercury/Iridium baselines under
/// both reference streams. Every (stream, design) replay is an
/// independent worker task; results land in the serial nesting order.
pub fn run(effort: SweepEffort, jobs: Jobs) -> Vec<HybridPoint> {
    let (keys, warmup, measured, tiers) = shape(effort);
    let counts = (keys, warmup, measured);
    let core = CoreConfig::a7_1ghz();
    let mut tasks: Vec<(String, f64, CoreSimConfig, StackConfig, u64)> = Vec::new();
    for (label, alpha) in streams() {
        let mercury = StackConfig::mercury(core.clone(), STACK_CORES, true).expect("valid");
        let mercury_mb = mercury.memory.capacity_bytes() >> 20;
        tasks.push((
            label.clone(),
            alpha,
            CoreSimConfig::mercury_a7(),
            mercury,
            mercury_mb,
        ));
        let iridium = StackConfig::iridium(core.clone(), STACK_CORES).expect("valid");
        tasks.push((
            label.clone(),
            alpha,
            CoreSimConfig::iridium_a7(),
            iridium,
            0,
        ));
        for &tier_mb in &tiers {
            let stack_tier = tier_mb << 20;
            let helios = StackConfig::helios(core.clone(), STACK_CORES, stack_tier).expect("valid");
            tasks.push((
                label.clone(),
                alpha,
                CoreSimConfig::helios_a7(stack_tier / u64::from(STACK_CORES)),
                helios,
                tier_mb,
            ));
        }
    }
    par_map(jobs, &tasks, |(label, alpha, config, stack, tier_mb)| {
        measure_design(label, *alpha, counts, config, stack, *tier_mb)
    })
}

/// Renders the latency/efficiency side of the sweep (Fig. 5/6 axes plus
/// Table-4-style columns).
pub fn sweep_table(points: &[HybridPoint]) -> TextTable {
    let mut t = TextTable::new(vec![
        "workload".into(),
        "design".into(),
        "tier MB".into(),
        "tier hit".into(),
        "p50 µs".into(),
        "p95 µs".into(),
        "p99 µs".into(),
        "stack KTPS".into(),
        "GB".into(),
        "KTPS/W".into(),
        "meas. KTPS/W".into(),
    ])
    .with_title("Extension — Helios DRAM-tier sweep vs Mercury/Iridium (A7-32 stacks)");
    for p in points {
        t.row(vec![
            p.workload.clone(),
            p.family.clone(),
            p.dram_tier_mb.to_string(),
            format!("{:.3}", p.tier_hit_rate),
            format!("{:.1}", p.p50_us),
            format!("{:.1}", p.p95_us),
            format!("{:.1}", p.p99_us),
            format!("{:.1}", p.tps / 1000.0),
            format!("{:.1}", p.capacity_gb),
            format!("{:.2}", p.ktps_per_watt),
            format!("{:.2}", p.measured_ktps_per_watt),
        ]);
    }
    t
}

/// Renders the power/wear side: per-tier bandwidth and watts, measured
/// power, and the FTL pressure counters.
pub fn power_table(points: &[HybridPoint]) -> TextTable {
    let mut t = TextTable::new(vec![
        "workload".into(),
        "design".into(),
        "tier MB".into(),
        "DRAM GB/s".into(),
        "flash GB/s".into(),
        "DRAM W".into(),
        "flash W".into(),
        "stack W".into(),
        "meas. W".into(),
        "µJ/op".into(),
        "GC pages".into(),
        "writebacks".into(),
    ])
    .with_title("Extension — Helios per-tier power and FTL pressure");
    for p in points {
        t.row(vec![
            p.workload.clone(),
            p.family.clone(),
            p.dram_tier_mb.to_string(),
            format!("{:.3}", p.dram_gbps),
            format!("{:.3}", p.flash_gbps),
            format!("{:.3}", p.dram_w),
            format!("{:.3}", p.flash_w),
            format!("{:.2}", p.stack_w_analytic),
            format!("{:.2}", p.stack_w_measured),
            format!("{:.1}", p.j_per_op * 1e6),
            p.gc_moved_pages.to_string(),
            p.writebacks.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helios_beats_iridium_p95_and_mercury_capacity() {
        let points = run(SweepEffort::quick(), Jobs::SERIAL);
        // 2 streams x (2 baselines + 3 quick tier sizes).
        assert_eq!(points.len(), 10);
        let etc: Vec<_> = points
            .iter()
            .filter(|p| p.workload.starts_with("ETC"))
            .collect();
        let mercury = etc.iter().find(|p| p.family == "Mercury-32").unwrap();
        let iridium = etc.iter().find(|p| p.family == "Iridium-32").unwrap();
        let helios: Vec<_> = etc.iter().filter(|p| p.family == "Helios-32").collect();
        assert_eq!(helios.len(), 3);

        // The acceptance point: some tier size beats Iridium on p95
        // while exceeding Mercury's per-stack capacity.
        assert!(
            helios
                .iter()
                .any(|h| h.p95_us < iridium.p95_us && h.capacity_gb > mercury.capacity_gb),
            "no Helios point beats Iridium p95 ({:.1} µs) with more than {} GB",
            iridium.p95_us,
            mercury.capacity_gb
        );

        // Hit rate grows with the tier (the stream never changes).
        for pair in helios.windows(2) {
            assert!(
                pair[1].tier_hit_rate >= pair[0].tier_hit_rate,
                "{} MB: {:.3} then {} MB: {:.3}",
                pair[0].dram_tier_mb,
                pair[0].tier_hit_rate,
                pair[1].dram_tier_mb,
                pair[1].tier_hit_rate
            );
        }
        // An oversized tier converges on Mercury's latency.
        let largest = helios.last().unwrap();
        assert!(largest.tier_hit_rate > 0.9);
        assert!(largest.p95_us < mercury.p95_us * 1.5);

        // Zipf sensitivity: the skewed stream hits more than the
        // low-skew control at the same (small) tier size.
        let low: Vec<_> = points
            .iter()
            .filter(|p| p.workload.starts_with("low-skew") && p.family == "Helios-32")
            .collect();
        assert!(
            helios[0].tier_hit_rate > low[0].tier_hit_rate,
            "zipf {} vs {}",
            helios[0].tier_hit_rate,
            low[0].tier_hit_rate
        );

        // Both efficiency columns are real and in the same regime.
        for p in &points {
            assert!(p.ktps_per_watt > 0.0 && p.measured_ktps_per_watt > 0.0);
            let rel = (p.measured_ktps_per_watt - p.ktps_per_watt).abs() / p.ktps_per_watt;
            assert!(
                rel < 0.35,
                "{} {}: analytic {} vs measured {}",
                p.family,
                p.dram_tier_mb,
                p.ktps_per_watt,
                p.measured_ktps_per_watt
            );
        }
        assert_eq!(sweep_table(&points).row_count(), 10);
        assert_eq!(power_table(&points).row_count(), 10);
    }
}
