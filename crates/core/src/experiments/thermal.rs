//! §6.5: cooling. Per-stack TDP and passive-cooling feasibility for the
//! headline configurations.

use densekv_cpu::CoreConfig;
use densekv_par::{par_map, Jobs};
use densekv_stack::area::{thermal_report, ThermalReport};
use densekv_stack::StackConfig;

use crate::report::TextTable;

/// One row of the thermal check.
#[derive(Debug, Clone)]
pub struct ThermalRow {
    /// Configuration name.
    pub name: String,
    /// The §6.5 report.
    pub report: ThermalReport,
}

/// Runs the thermal check across the headline stacks, one worker task
/// per configuration.
pub fn run(jobs: Jobs) -> Vec<ThermalRow> {
    let configs: Vec<(StackConfig, f64)> = vec![
        // (stack, peak memory GB/s it sustains)
        (
            StackConfig::mercury(CoreConfig::a7_1ghz(), 32, true).expect("valid"),
            6.25,
        ),
        (
            StackConfig::iridium(CoreConfig::a7_1ghz(), 32).expect("valid"),
            0.5,
        ),
        (
            StackConfig::mercury(CoreConfig::a15_1ghz(), 8, true).expect("valid"),
            2.25,
        ),
        (
            StackConfig::mercury(CoreConfig::a15_1p5ghz(), 32, true).expect("valid"),
            1.3,
        ),
    ];
    par_map(jobs, &configs, |(stack, gbps)| ThermalRow {
        name: format!("{} ({})", stack.name(), stack.core.label()),
        report: thermal_report(stack, *gbps),
    })
}

/// Renders the thermal rows.
pub fn table(rows: &[ThermalRow]) -> TextTable {
    let mut t = TextTable::new(vec![
        "stack".into(),
        "TDP (W)".into(),
        "W/cm^2".into(),
        "passive cooling".into(),
    ])
    .with_title("§6.5 — Per-stack thermal budget");
    for r in rows {
        t.row(vec![
            r.name.clone(),
            format!("{:.2}", r.report.stack_tdp_w),
            format!("{:.2}", r.report.power_density_w_cm2),
            if r.report.passively_coolable {
                "ok".into()
            } else {
                "exceeds limit".into()
            },
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a7_headline_stacks_are_coolable() {
        let rows = run(Jobs::SERIAL);
        let mercury = rows
            .iter()
            .find(|r| r.name.contains("Mercury-32 (A7"))
            .unwrap();
        assert!(mercury.report.passively_coolable);
        // §6.5: ~6.2 W per stack.
        assert!((4.0..8.0).contains(&mercury.report.stack_tdp_w));
        let iridium = rows.iter().find(|r| r.name.contains("Iridium-32")).unwrap();
        assert!(iridium.report.passively_coolable);
        assert!(iridium.report.stack_tdp_w < mercury.report.stack_tdp_w);
    }

    #[test]
    fn hot_a15_stack_flagged() {
        let rows = run(Jobs::SERIAL);
        let hot = rows
            .iter()
            .find(|r| r.name.contains("A15 @1.5GHz"))
            .unwrap();
        assert!(!hot.report.passively_coolable);
        let rendered = table(&rows).to_string();
        assert!(rendered.contains("exceeds limit"));
        assert!(rendered.contains("ok"));
    }
}
