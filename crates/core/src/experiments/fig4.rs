//! Figure 4: components of GET and PUT execution time.
//!
//! The paper runs a single A15 @ 1 GHz with a 2 MB L2 and 10 ns DRAM and
//! breaks each request into hash computation, Memcached metadata work,
//! and the network stack (which includes data transfer).

use densekv_cpu::CoreConfig;
use densekv_par::{par_map, Jobs};
use densekv_sim::Duration;
use densekv_workload::paper_size_sweep;

use crate::report::{size_label, TextTable};
use crate::sim::CoreSimConfig;
use crate::sweep::{measure_point, SweepEffort};

/// One bar of Fig. 4: the three component shares at one size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakdownBar {
    /// Request size, bytes.
    pub value_bytes: u64,
    /// Network-stack share of server time (includes data transfer).
    pub network: f64,
    /// Memcached metadata share.
    pub store: f64,
    /// Hash-computation share.
    pub hash: f64,
}

/// Figure 4's output: one breakdown series per operation.
#[derive(Debug, Clone)]
pub struct Fig4 {
    /// Fig. 4a: GET bars.
    pub get: Vec<BreakdownBar>,
    /// Fig. 4b: PUT bars.
    pub put: Vec<BreakdownBar>,
}

impl Fig4 {
    /// Renders both panels as tables.
    pub fn tables(&self) -> Vec<TextTable> {
        let render = |title: &str, bars: &[BreakdownBar]| {
            let mut t = TextTable::new(vec![
                "size".into(),
                "hash %".into(),
                "memcached %".into(),
                "network %".into(),
            ])
            .with_title(title);
            for b in bars {
                t.row(vec![
                    size_label(b.value_bytes),
                    format!("{:.1}", b.hash * 100.0),
                    format!("{:.1}", b.store * 100.0),
                    format!("{:.1}", b.network * 100.0),
                ]);
            }
            t
        };
        vec![
            render("Fig. 4a — GET execution time breakdown", &self.get),
            render("Fig. 4b — PUT execution time breakdown", &self.put),
        ]
    }
}

/// Runs the Fig. 4 experiment, one worker task per size point.
pub fn run(effort: SweepEffort, jobs: Jobs) -> Fig4 {
    // Paper §6.1: a single A15 @1 GHz, 2 MB L2, 10 ns DRAM.
    let config = CoreSimConfig::mercury(CoreConfig::a15_1ghz(), true, Duration::from_nanos(10));
    let sizes = paper_size_sweep();
    let points = par_map(jobs, &sizes, |&size| measure_point(&config, size, effort));
    let mut get = Vec::new();
    let mut put = Vec::new();
    for (size, point) in sizes.iter().zip(&points) {
        get.push(BreakdownBar {
            value_bytes: *size,
            network: point.get.network_share,
            store: point.get.store_share,
            hash: point.get.hash_share,
        });
        put.push(BreakdownBar {
            value_bytes: *size,
            network: point.put.network_share,
            store: point.put.store_share,
            hash: point.put.hash_share,
        });
    }
    Fig4 { get, put }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_matches_paper_shape() {
        let fig = run(SweepEffort::quick(), Jobs::SERIAL);
        assert_eq!(fig.get.len(), 15);

        // Small GETs: network ~87%, store ~10%, hash 2-3% (paper §6.1.1).
        let small = &fig.get[0];
        assert!(
            (0.75..0.95).contains(&small.network),
            "64 B GET network share {:.2}",
            small.network
        );
        assert!(small.store < 0.2 && small.store > 0.03);
        assert!(small.hash < 0.08);

        // Large GETs: nearly all network.
        let large = fig.get.last().expect("1 MB bar");
        assert!(
            large.network > 0.95,
            "1 MB network share {:.2}",
            large.network
        );

        // PUTs: Memcached work is a visibly larger share than for GETs.
        let put_small = &fig.put[0];
        assert!(
            put_small.store > small.store * 1.5,
            "PUT store {:.2} vs GET store {:.2}",
            put_small.store,
            small.store
        );

        // Shares are shares.
        for b in fig.get.iter().chain(fig.put.iter()) {
            let sum = b.network + b.store + b.hash;
            assert!((sum - 1.0).abs() < 0.02, "size {}: {sum}", b.value_bytes);
        }
    }

    #[test]
    fn tables_render() {
        let fig = run(SweepEffort::quick(), Jobs::SERIAL);
        let tables = fig.tables();
        assert_eq!(tables.len(), 2);
        let text = tables[0].to_string();
        assert!(text.contains("Fig. 4a"));
        assert!(text.contains("1M"));
    }
}
