//! Figures 5 and 6: single-stack (Mercury-1 / Iridium-1) throughput
//! sensitivity to memory latency, CPU type, and the L2.

use densekv_cpu::CoreConfig;
use densekv_par::{par_map, Jobs};
use densekv_sim::Duration;
use densekv_workload::paper_size_sweep;

use crate::report::{size_label, TextTable};
use crate::sim::CoreSimConfig;
use crate::sweep::{measure_point, SweepEffort, SweepPoint};

/// One curve: a (cpu, L2, latency, op) series over request sizes.
#[derive(Debug, Clone)]
pub struct Series {
    /// CPU label.
    pub cpu: String,
    /// Whether a 2 MB L2 was present.
    pub l2: bool,
    /// Memory latency of this curve.
    pub latency: Duration,
    /// `"GET"` or `"PUT"`.
    pub op: &'static str,
    /// `(value_bytes, tps)` points.
    pub points: Vec<(u64, f64)>,
}

impl Series {
    /// Label like `A7 w/ L2, 10ns - GET`.
    pub fn label(&self) -> String {
        format!(
            "{} {} L2, {} - {}",
            self.cpu,
            if self.l2 { "w/" } else { "no" },
            self.latency,
            self.op
        )
    }
}

/// A full figure: all panels' curves.
#[derive(Debug, Clone)]
pub struct LatencyFigure {
    /// Figure name (`Fig. 5` / `Fig. 6`).
    pub name: &'static str,
    /// All series.
    pub series: Vec<Series>,
}

impl LatencyFigure {
    /// The series for one panel (cpu + L2 combination).
    pub fn panel(&self, cpu: &str, l2: bool) -> Vec<&Series> {
        self.series
            .iter()
            .filter(|s| s.cpu == cpu && s.l2 == l2)
            .collect()
    }

    /// Renders one table per panel, sizes as rows and curves as columns.
    pub fn tables(&self) -> Vec<TextTable> {
        let mut panels: Vec<(String, bool)> = Vec::new();
        for s in &self.series {
            let key = (s.cpu.clone(), s.l2);
            if !panels.contains(&key) {
                panels.push(key);
            }
        }
        panels
            .into_iter()
            .map(|(cpu, l2)| {
                let series = self.panel(&cpu, l2);
                let mut header = vec!["size".to_string()];
                header.extend(
                    series
                        .iter()
                        .map(|s| format!("{} {} (KTPS)", s.latency, s.op)),
                );
                let mut t = TextTable::new(header).with_title(&format!(
                    "{} — {} {} L2",
                    self.name,
                    cpu,
                    if l2 { "with" } else { "no" }
                ));
                let sizes: Vec<u64> = series
                    .first()
                    .map(|s| s.points.iter().map(|&(b, _)| b).collect())
                    .unwrap_or_default();
                for (i, size) in sizes.iter().enumerate() {
                    let mut row = vec![size_label(*size)];
                    for s in &series {
                        row.push(format!("{:.2}", s.points[i].1 / 1000.0));
                    }
                    t.row(row);
                }
                t
            })
            .collect()
    }
}

/// The four CPU panels of Figs. 5/6: (core, has L2).
fn cpu_panels() -> [(CoreConfig, bool); 4] {
    [
        (CoreConfig::a15_1ghz(), true),
        (CoreConfig::a15_1ghz(), false),
        (CoreConfig::a7_1ghz(), true),
        (CoreConfig::a7_1ghz(), false),
    ]
}

fn run_figure(
    name: &'static str,
    latencies: &[Duration],
    make: impl Fn(CoreConfig, bool, Duration) -> CoreSimConfig + Sync,
    effort: SweepEffort,
    jobs: Jobs,
) -> LatencyFigure {
    // Flatten panels × latencies × sizes into one ordered task list so
    // every size point of every curve is an independent worker task.
    let sizes = paper_size_sweep();
    let curves: Vec<(CoreConfig, bool, Duration)> = cpu_panels()
        .into_iter()
        .flat_map(|(core, l2)| latencies.iter().map(move |&lat| (core.clone(), l2, lat)))
        .collect();
    let tasks: Vec<(usize, u64)> = curves
        .iter()
        .enumerate()
        .flat_map(|(ci, _)| sizes.iter().map(move |&s| (ci, s)))
        .collect();
    let points = par_map(jobs, &tasks, |&(ci, size)| {
        let (core, l2, latency) = &curves[ci];
        measure_point(&make(core.clone(), *l2, *latency), size, effort)
    });

    let mut series = Vec::new();
    for ((core, l2, latency), chunk) in curves.iter().zip(points.chunks(sizes.len())) {
        let collect = |pick: fn(&SweepPoint) -> f64| {
            sizes
                .iter()
                .zip(chunk)
                .map(|(&size, p)| (size, pick(p)))
                .collect::<Vec<_>>()
        };
        series.push(Series {
            cpu: core.label(),
            l2: *l2,
            latency: *latency,
            op: "GET",
            points: collect(|p| p.get.tps),
        });
        series.push(Series {
            cpu: core.label(),
            l2: *l2,
            latency: *latency,
            op: "PUT",
            points: collect(|p| p.put.tps),
        });
    }
    LatencyFigure { name, series }
}

/// Figure 5: Mercury-1 across DRAM latencies 10/30/50/100 ns.
pub fn fig5(effort: SweepEffort, jobs: Jobs) -> LatencyFigure {
    let latencies: Vec<Duration> = [10, 30, 50, 100]
        .iter()
        .map(|&ns| Duration::from_nanos(ns))
        .collect();
    run_figure(
        "Fig. 5 (Mercury-1)",
        &latencies,
        CoreSimConfig::mercury,
        effort,
        jobs,
    )
}

/// Figure 6: Iridium-1 across flash read latencies 10/20 µs.
pub fn fig6(effort: SweepEffort, jobs: Jobs) -> LatencyFigure {
    let latencies: Vec<Duration> = [10, 20]
        .iter()
        .map(|&us| Duration::from_micros(us))
        .collect();
    run_figure(
        "Fig. 6 (Iridium-1)",
        &latencies,
        CoreSimConfig::iridium,
        effort,
        jobs,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trimmed fig5 for unit tests: one panel, two latencies, few sizes.
    fn mini_fig5(core: CoreConfig, l2: bool, ns: &[u64]) -> Vec<(u64, f64, u64)> {
        // (latency_ns, tps@64, latency) triples at 64 B GET.
        ns.iter()
            .map(|&latency| {
                let config =
                    CoreSimConfig::mercury(core.clone(), l2, Duration::from_nanos(latency));
                let p = measure_point(&config, 64, SweepEffort::quick());
                (latency, p.get.tps, latency)
            })
            .collect()
    }

    #[test]
    fn no_l2_panel_is_latency_sensitive() {
        let points = mini_fig5(CoreConfig::a7_1ghz(), false, &[10, 100]);
        let (fast, slow) = (points[0].1, points[1].1);
        assert!(
            fast > slow * 1.4,
            "Fig. 5d: 10 ns ({fast:.0}) should far outrun 100 ns ({slow:.0})"
        );
    }

    #[test]
    fn l2_panel_is_nearly_flat() {
        let points = mini_fig5(CoreConfig::a7_1ghz(), true, &[10, 100]);
        let (fast, slow) = (points[0].1, points[1].1);
        assert!(
            fast < slow * 1.2,
            "Fig. 5c: with an L2 the spread is small ({fast:.0} vs {slow:.0})"
        );
    }

    #[test]
    fn fig6_panels_shape() {
        // Iridium with L2: thousands of TPS; GET beats PUT by a wide
        // margin (fig. 6 + §6.2).
        let config = CoreSimConfig::iridium(CoreConfig::a7_1ghz(), true, Duration::from_micros(10));
        let p = measure_point(&config, 64, SweepEffort::quick());
        assert!(p.get.tps > 3_000.0, "GET {:.0}", p.get.tps);
        assert!(p.put.tps < 2_000.0, "PUT {:.0}", p.put.tps);
        assert!(p.get.tps > p.put.tps * 3.0);
    }

    #[test]
    fn labels_and_tables() {
        let fig = LatencyFigure {
            name: "Fig. 5 (Mercury-1)",
            series: vec![Series {
                cpu: "A7 @1GHz".into(),
                l2: true,
                latency: Duration::from_nanos(10),
                op: "GET",
                points: vec![(64, 11_000.0), (128, 10_500.0)],
            }],
        };
        assert_eq!(fig.series[0].label(), "A7 @1GHz w/ L2, 10.000ns - GET");
        let tables = fig.tables();
        assert_eq!(tables.len(), 1);
        assert!(tables[0].to_string().contains("11.00"));
    }
}
