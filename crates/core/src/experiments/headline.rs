//! The §6 headline multipliers: Mercury and Iridium versus the strongest
//! software baseline (Bags).

use densekv_baseline::BAGS;

use crate::experiments::tables::Table4;
use crate::paper::{Headline, IRIDIUM_HEADLINE, MERCURY_HEADLINE};
use crate::report::TextTable;

/// Measured-vs-published headline comparison.
#[derive(Debug, Clone)]
pub struct HeadlineReport {
    /// Measured Mercury multipliers (Mercury-32 vs. Bags).
    pub mercury: Headline,
    /// Measured Iridium multipliers (Iridium-32 vs. Bags).
    pub iridium: Headline,
}

impl HeadlineReport {
    /// Renders measured vs. paper side by side.
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new(vec![
            "metric".into(),
            "Mercury (measured)".into(),
            "Mercury (paper)".into(),
            "Iridium (measured)".into(),
            "Iridium (paper)".into(),
        ])
        .with_title("§6 headline multipliers vs. Memcached Bags");
        type Getter = fn(&Headline) -> f64;
        let rows: [(&str, Getter); 4] = [
            ("density", |h| h.density),
            ("TPS/W", |h| h.efficiency),
            ("TPS", |h| h.throughput),
            ("TPS/GB", |h| h.tps_per_gb),
        ];
        for (name, get) in rows {
            t.row(vec![
                name.into(),
                format!("{:.2}x", get(&self.mercury)),
                format!("{:.2}x", get(&MERCURY_HEADLINE)),
                format!("{:.2}x", get(&self.iridium)),
                format!("{:.2}x", get(&IRIDIUM_HEADLINE)),
            ]);
        }
        t
    }
}

/// Computes the headline multipliers from a reproduced Table 4.
///
/// # Panics
///
/// Panics if the table lacks the Mercury-32 / Iridium-32 rows.
pub fn run(table4: &Table4) -> HeadlineReport {
    let ratio = |name: &str| {
        let row = table4.row(name).expect("Table 4 row present");
        Headline {
            density: row.memory_gb / BAGS.memory_gb,
            efficiency: row.ktps_per_watt / BAGS.ktps_per_watt(),
            throughput: row.mtps / BAGS.mtps,
            tps_per_gb: row.ktps_per_gb / BAGS.ktps_per_gb(),
        }
    };
    HeadlineReport {
        mercury: ratio("Mercury-32"),
        iridium: ratio("Iridium-32"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::evaluation::evaluate_a7;
    use crate::experiments::tables::table4;
    use crate::sweep::SweepEffort;
    use densekv_par::Jobs;

    #[test]
    fn headline_bands() {
        let t4 = table4(&evaluate_a7(SweepEffort::quick(), Jobs::SERIAL));
        let report = run(&t4);

        // Mercury: 2.9x density, 4.9x TPS/W, 10x TPS, 3.5x TPS/GB.
        assert!(
            (2.3..3.5).contains(&report.mercury.density),
            "density {:.2}",
            report.mercury.density
        );
        assert!(
            (3.5..7.0).contains(&report.mercury.efficiency),
            "efficiency {:.2}",
            report.mercury.efficiency
        );
        assert!(
            (7.0..13.5).contains(&report.mercury.throughput),
            "throughput {:.2}",
            report.mercury.throughput
        );
        assert!(
            (2.5..4.6).contains(&report.mercury.tps_per_gb),
            "TPS/GB {:.2}",
            report.mercury.tps_per_gb
        );

        // Iridium: ~14.8x density, 2.4x TPS/W, 5.2x TPS, 1/2.8 TPS/GB.
        assert!(
            (13.0..16.0).contains(&report.iridium.density),
            "density {:.2}",
            report.iridium.density
        );
        assert!(
            (1.6..3.5).contains(&report.iridium.efficiency),
            "efficiency {:.2}",
            report.iridium.efficiency
        );
        assert!(
            (3.5..7.0).contains(&report.iridium.throughput),
            "throughput {:.2}",
            report.iridium.throughput
        );
        assert!(
            report.iridium.tps_per_gb < 0.6,
            "TPS/GB {:.2} should be well below 1",
            report.iridium.tps_per_gb
        );

        let rendered = report.table().to_string();
        assert!(rendered.contains("density"));
        assert!(rendered.contains("x"));
    }
}
