//! Extension experiment: latency under load (SLA curves).
//!
//! The paper argues both architectures serve "a majority of requests
//! within the sub-millisecond range" and positions Iridium for
//! moderate-to-low request rates (§4.2). This experiment quantifies
//! that: Poisson arrivals at increasing fractions of each core's
//! closed-loop capacity, reporting queueing-inclusive percentiles and
//! the 1 ms SLA attainment.

use densekv_par::{par_map, Jobs};
use densekv_sim::Duration;

use crate::openloop::{run as run_openloop, OpenLoopConfig};
use crate::report::TextTable;
use crate::sim::CoreSimConfig;
use crate::sweep::{measure_point, SweepEffort};

/// One load point of the SLA experiment.
#[derive(Debug, Clone)]
pub struct SlaPoint {
    /// Architecture label.
    pub system: &'static str,
    /// Offered load as a fraction of closed-loop capacity.
    pub load_fraction: f64,
    /// Offered rate, requests/second.
    pub rate: f64,
    /// Median response time.
    pub p50: Duration,
    /// 99th-percentile response time.
    pub p99: Duration,
    /// Fraction of responses within 1 ms.
    pub sla_1ms: f64,
}

/// Runs the SLA experiment for Mercury and Iridium A7 cores at 64 B.
///
/// Stage 1 measures each system's closed-loop capacity in parallel;
/// stage 2 fans the (system, load) grid out, each open-loop run an
/// independent task. Both stages collect in index order, so the output
/// is jobs-invariant.
pub fn run(effort: SweepEffort, jobs: Jobs) -> Vec<SlaPoint> {
    let systems: [(&'static str, CoreSimConfig); 2] = [
        ("Mercury A7", CoreSimConfig::mercury_a7()),
        ("Iridium A7", CoreSimConfig::iridium_a7()),
    ];
    // Closed-loop capacity anchors the load axis.
    let capacities = par_map(jobs, &systems, |(_, config)| {
        measure_point(config, 64, effort).get.tps
    });
    let tasks: Vec<(usize, f64)> = (0..systems.len())
        .flat_map(|si| [0.3, 0.6, 0.9].into_iter().map(move |load| (si, load)))
        .collect();
    par_map(jobs, &tasks, |&(si, load)| {
        let (system, config) = &systems[si];
        let mut ol = OpenLoopConfig::gets(config.clone(), 64, capacities[si] * load);
        ol.requests = 500;
        ol.warmup = 300;
        let result = run_openloop(&ol);
        SlaPoint {
            system,
            load_fraction: load,
            rate: result.offered_rate,
            p50: result.latency.percentile(0.50).expect("samples"),
            p99: result.latency.percentile(0.99).expect("samples"),
            sla_1ms: result.sla_1ms,
        }
    })
}

/// Renders the SLA table.
pub fn table(points: &[SlaPoint]) -> TextTable {
    let mut t = TextTable::new(vec![
        "system".into(),
        "load".into(),
        "rate (KTPS)".into(),
        "p50".into(),
        "p99".into(),
        "under 1ms".into(),
    ])
    .with_title("Extension — latency under load (Poisson arrivals, 64 B GETs)");
    for p in points {
        t.row(vec![
            p.system.into(),
            format!("{:.0}%", p.load_fraction * 100.0),
            format!("{:.2}", p.rate / 1000.0),
            p.p50.to_string(),
            p.p99.to_string(),
            format!("{:.1}%", p.sla_1ms * 100.0),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sla_curves_shape() {
        let points = run(SweepEffort::quick(), Jobs::SERIAL);
        assert_eq!(points.len(), 6);
        // Within each system, p99 grows with load and the SLA attainment
        // never improves.
        for system in ["Mercury A7", "Iridium A7"] {
            let series: Vec<_> = points.iter().filter(|p| p.system == system).collect();
            assert!(series.windows(2).all(|w| w[1].p99 >= w[0].p99));
            assert!(series
                .windows(2)
                .all(|w| w[1].sla_1ms <= w[0].sla_1ms + 0.01));
            // At 30% load both architectures hold the paper's SLA.
            assert!(
                series[0].sla_1ms > 0.95,
                "{system} at 30%: {:.2}",
                series[0].sla_1ms
            );
        }
        let rendered = table(&points).to_string();
        assert!(rendered.contains("under 1ms"));
    }
}
