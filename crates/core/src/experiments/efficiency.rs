//! Extension experiment: efficiency across the size sweep.
//!
//! Table 4 reports TPS/W at 64 B only. This experiment extends the
//! paper's efficiency story across the full 64 B–1 MB sweep for the
//! headline A7 servers: where Mercury's advantage peaks, where the wire
//! cap flattens it, and where Iridium's cheap flash bandwidth narrows
//! the gap.
//!
//! Every point carries *two* efficiency numbers: the analytic one
//! (`tps / stack_power(...)`, the paper's methodology) and a measured
//! one integrated from the event-driven [`EnergyMeter`] of a metered
//! replay of the same size point. Both cite the shared
//! [`stack_working_point`] for the wire derate, and the
//! `energy_converges_to_stack_power` test pins them within 1 % at the
//! component level — here the test below holds the end-to-end columns
//! together within a looser sampling tolerance.
//!
//! [`EnergyMeter`]: densekv_energy::EnergyMeter

use densekv_cpu::CoreConfig;
use densekv_par::{par_map, Jobs};
use densekv_server::{evaluate_server, plan_server, stack_working_point, ServerConstraints};
use densekv_stack::StackConfig;
use densekv_workload::paper_size_sweep;

use crate::energy::measure_energy_point;
use crate::experiments::evaluation::Family;
use crate::report::{size_label, TextTable};
use crate::sim::CoreSimConfig;
use crate::sweep::{measure_point, SweepEffort};

/// One size point of the efficiency sweep.
#[derive(Debug, Clone)]
pub struct EfficiencyPoint {
    /// Mercury or Iridium.
    pub family: Family,
    /// Value size, bytes.
    pub value_bytes: u64,
    /// Whole-server TPS.
    pub tps: f64,
    /// Whole-server wall power, watts.
    pub power_w: f64,
    /// Analytic efficiency, thousand TPS per watt.
    pub ktps_per_watt: f64,
    /// Measured efficiency from accumulated event-driven energy,
    /// thousand TPS per watt (scaled to the same 32-core stack).
    pub measured_ktps_per_watt: f64,
    /// Wire payload delivered, GB/s.
    pub wire_gbps: f64,
}

/// Runs the sweep for the A7 Mercury-32 and Iridium-32 servers. Each
/// (family, size) point is one worker task that performs both the
/// performance and the metered-energy replay; the per-family server
/// plan (which needs the whole sweep's peak bandwidth) is derived
/// serially after the join, so results are jobs-invariant.
pub fn run(effort: SweepEffort, jobs: Jobs) -> Vec<EfficiencyPoint> {
    let constraints = ServerConstraints::paper_1p5u();
    let families = [
        (
            Family::Mercury,
            CoreSimConfig::mercury_a7(),
            StackConfig::mercury(CoreConfig::a7_1ghz(), 32, true).expect("valid"),
        ),
        (
            Family::Iridium,
            CoreSimConfig::iridium_a7(),
            StackConfig::iridium(CoreConfig::a7_1ghz(), 32).expect("valid"),
        ),
    ];
    let sizes = paper_size_sweep();
    let tasks: Vec<(usize, u64)> = (0..families.len())
        .flat_map(|fi| sizes.iter().map(move |&s| (fi, s)))
        .collect();
    let measured: Vec<_> = par_map(jobs, &tasks, |&(fi, size)| {
        let config = &families[fi].1;
        (
            measure_point(config, size, effort),
            measure_energy_point(config, size, effort),
        )
    });

    let mut points = Vec::new();
    for ((family, _, stack), chunk) in families.iter().zip(measured.chunks(sizes.len())) {
        let peak = chunk
            .iter()
            .map(|(p, _)| crate::experiments::evaluation::stack_mem_gbps(32, p.get.perf))
            .fold(0.0f64, f64::max);
        let plan = plan_server(&constraints, stack.clone(), peak);
        for (point, energy) in chunk {
            let report = evaluate_server(&plan, point.get.perf);
            let derate = stack_working_point(plan.stack.cores, point.get.perf).derate;
            // Same wall-power conversion as the analytic column: stacks x
            // measured stack watts, through the PSU/overhead model.
            let stacks = f64::from(plan.stacks);
            let measured_wall_w = plan
                .constraints
                .wall_power_w(stacks * energy.measured_stack_watts(plan.stack.cores, derate));
            let measured_tps = stacks * energy.measured_stack_tps(plan.stack.cores, derate);
            points.push(EfficiencyPoint {
                family: *family,
                value_bytes: point.value_bytes,
                tps: report.tps,
                power_w: report.power_w,
                ktps_per_watt: report.ktps_per_watt,
                measured_ktps_per_watt: measured_tps / 1000.0 / measured_wall_w,
                wire_gbps: report.wire_gbps,
            });
        }
    }
    points
}

/// Renders the efficiency sweep.
pub fn table(points: &[EfficiencyPoint]) -> TextTable {
    let mut t = TextTable::new(vec![
        "size".into(),
        "Mercury KTPS/W".into(),
        "Mercury meas.".into(),
        "Mercury GB/s".into(),
        "Iridium KTPS/W".into(),
        "Iridium meas.".into(),
        "Iridium GB/s".into(),
    ])
    .with_title(
        "Extension — A7-32 server efficiency across the size sweep (GETs, analytic vs measured)",
    );
    for size in paper_size_sweep() {
        let find = |family: Family| {
            points
                .iter()
                .find(|p| p.family == family && p.value_bytes == size)
        };
        if let (Some(m), Some(i)) = (find(Family::Mercury), find(Family::Iridium)) {
            t.row(vec![
                size_label(size),
                format!("{:.2}", m.ktps_per_watt),
                format!("{:.2}", m.measured_ktps_per_watt),
                format!("{:.2}", m.wire_gbps),
                format!("{:.2}", i.ktps_per_watt),
                format!("{:.2}", i.measured_ktps_per_watt),
                format!("{:.2}", i.wire_gbps),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_peaks_small_and_mercury_leads() {
        let points = run(SweepEffort::quick(), Jobs::SERIAL);
        assert_eq!(points.len(), 30);
        let mercury_64 = points
            .iter()
            .find(|p| p.family == Family::Mercury && p.value_bytes == 64)
            .expect("present");
        let mercury_1m = points
            .iter()
            .find(|p| p.family == Family::Mercury && p.value_bytes == 1 << 20)
            .expect("present");
        // TPS/W collapses with size (per-request work grows, power ~flat).
        assert!(mercury_64.ktps_per_watt > 10.0 * mercury_1m.ktps_per_watt);
        // Mercury leads Iridium at every size, and the measured column
        // tracks the analytic one: both cite the same working point and
        // the meter converges to stack_power, so the residual is only
        // run-to-run sampling (different request sequences).
        for size in paper_size_sweep() {
            let m = points
                .iter()
                .find(|p| p.family == Family::Mercury && p.value_bytes == size)
                .expect("mercury point");
            let i = points
                .iter()
                .find(|p| p.family == Family::Iridium && p.value_bytes == size)
                .expect("iridium point");
            assert!(
                m.ktps_per_watt > i.ktps_per_watt,
                "at {size}: {} vs {}",
                m.ktps_per_watt,
                i.ktps_per_watt
            );
            for p in [m, i] {
                let rel = (p.measured_ktps_per_watt - p.ktps_per_watt).abs() / p.ktps_per_watt;
                assert!(
                    rel < 0.25,
                    "{:?} at {size}: analytic {} vs measured {} (rel {rel})",
                    p.family,
                    p.ktps_per_watt,
                    p.measured_ktps_per_watt
                );
            }
        }
        assert!(table(&points).row_count() == 15);
    }
}
