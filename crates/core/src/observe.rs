//! Bridges the execution-driven core simulator into the telemetry
//! layer: spans, metrics, and timeline gauges for [`CoreSim`] runs.
//!
//! [`CoreSim`] itself stays telemetry-free — it returns a
//! [`PhaseBreakdown`] and exposes raw counters, and this module turns
//! them into [`densekv_telemetry`] records. [`CoreObserver`] drives a
//! closed-loop request sequence (each request departs when the previous
//! response lands, TPS = 1/RTT as in §5.3) and records every request
//! into a [`Telemetry`] bundle as it goes. Telemetry is passive: the
//! observer calls the same [`CoreSim::execute_breakdown`] whether the
//! bundle is enabled or disabled, so observed and unobserved runs
//! produce bit-identical timings.

use densekv_sim::stats::LatencyHistogram;
use densekv_sim::SimTime;
use densekv_telemetry::{CounterId, HistogramId, MetricsRegistry, SpanBuilder, Telemetry};
use densekv_workload::{Op, Request};

use crate::sim::CoreSim;
use crate::sim::RequestTiming;

/// Gauge columns a [`CoreObserver`] keeps current in the bundle's
/// sampler; build the sampler with exactly these columns.
pub const CORE_TIMELINE_COLUMNS: &[&str] =
    &["kv_hit_rate", "l1d_hit_rate", "l2_hit_rate", "wire_mb"];

/// Trace-viewer process id the observer files core spans under.
const CORE_PID: u32 = 1;

/// Executes requests on a [`CoreSim`] while recording telemetry.
///
/// Registered metrics: `core.requests`, `core.hits`, `core.misses`
/// counters and `core.rtt` / `core.server` latency histograms. Cores
/// with a hybrid (Helios) memory additionally keep `core.tier_hits` /
/// `core.tier_misses` counters current with the DRAM tier's cumulative
/// totals. Sampled requests get one span whose phases are the request's
/// [`PhaseBreakdown`](crate::sim::PhaseBreakdown) — they tile the RTT
/// exactly, so `phase_sum == total` holds for every exported span.
#[derive(Debug)]
pub struct CoreObserver {
    requests: CounterId,
    hits: CounterId,
    misses: CounterId,
    tier_hits: CounterId,
    tier_misses: CounterId,
    last_tier: (u64, u64),
    rtt: HistogramId,
    server: HistogramId,
    seq: u64,
    clock: SimTime,
}

impl CoreObserver {
    /// Registers the observer's metrics in `metrics` and starts the
    /// closed-loop clock at the epoch.
    pub fn new(metrics: &mut MetricsRegistry) -> Self {
        CoreObserver {
            requests: metrics.counter("core.requests"),
            hits: metrics.counter("core.hits"),
            misses: metrics.counter("core.misses"),
            tier_hits: metrics.counter("core.tier_hits"),
            tier_misses: metrics.counter("core.tier_misses"),
            last_tier: (0, 0),
            rtt: metrics.histogram("core.rtt"),
            server: metrics.histogram("core.server"),
            seq: 0,
            clock: SimTime::ZERO,
        }
    }

    /// The simulated time the next request departs at.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Requests executed so far.
    pub fn executed(&self) -> u64 {
        self.seq
    }

    /// Executes `request` on `core`, records it into `tele`, and
    /// advances the closed-loop clock by the round trip.
    pub fn execute(
        &mut self,
        tele: &mut Telemetry,
        core: &mut CoreSim,
        request: &Request,
    ) -> RequestTiming {
        let (timing, breakdown) = core.execute_breakdown(request);
        self.record(tele, core, request, timing, &breakdown)
    }

    /// Records an already-executed request into `tele` and advances the
    /// closed-loop clock — the half of [`CoreObserver::execute`] that
    /// other observers (e.g. the energy layer) share when they need the
    /// same execution's breakdown first.
    pub fn record(
        &mut self,
        tele: &mut Telemetry,
        core: &CoreSim,
        request: &Request,
        timing: RequestTiming,
        breakdown: &crate::sim::PhaseBreakdown,
    ) -> RequestTiming {
        let start = self.clock;
        let end = start + timing.rtt;

        if tele.tracer.samples(self.seq) {
            let label = match request.op {
                Op::Get => "GET",
                Op::Put => "PUT",
            };
            let mut b = SpanBuilder::new(self.seq, label, CORE_PID, 0, start);
            for (name, d) in breakdown.phases() {
                b.phase(name, d);
            }
            tele.tracer.push(b.build());
        }

        tele.metrics.inc(self.requests, 1);
        tele.metrics
            .inc(if timing.hit { self.hits } else { self.misses }, 1);
        if let Some(tier) = core.tier_stats() {
            tele.metrics
                .inc(self.tier_hits, tier.hits.saturating_sub(self.last_tier.0));
            tele.metrics.inc(
                self.tier_misses,
                tier.misses.saturating_sub(self.last_tier.1),
            );
            self.last_tier = (tier.hits, tier.misses);
        }
        tele.metrics.observe(self.rtt, timing.rtt);
        tele.metrics.observe(self.server, timing.server);

        if tele.sampler.is_enabled() {
            tele.sampler.advance(end);
            let kv = core.store_stats();
            let cache = core.cache_stats();
            tele.sampler.set(0, kv.hit_rate());
            tele.sampler.set(1, cache.l1d.hit_rate());
            tele.sampler
                .set(2, cache.l2.map_or(0.0, |l2| l2.hit_rate()));
            tele.sampler.set(3, core.wire_bytes() as f64 / 1e6);
        }

        self.clock = end;
        self.seq += 1;
        timing
    }
}

/// Runs `requests` back-to-back through a fresh [`CoreObserver`],
/// recording into `tele`, and returns the exact RTT distribution — the
/// one-call harness the `trace_run` bench bin and the telemetry
/// property tests share.
pub fn run_observed(
    core: &mut CoreSim,
    requests: &[Request],
    tele: &mut Telemetry,
) -> LatencyHistogram {
    let mut observer = CoreObserver::new(&mut tele.metrics);
    let mut latency = LatencyHistogram::new();
    for request in requests {
        let timing = observer.execute(tele, core, request);
        latency.record(timing.rtt);
    }
    tele.sampler.finish(observer.now());
    latency
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::CoreSimConfig;
    use densekv_sim::Duration;
    use densekv_telemetry::TelemetryConfig;
    use densekv_workload::key_bytes;

    fn requests(n: u64) -> Vec<Request> {
        (0..n)
            .map(|i| Request {
                op: if i % 4 == 3 { Op::Put } else { Op::Get },
                key: key_bytes(i % 16),
                value_bytes: 64,
            })
            .collect()
    }

    fn fresh_core() -> CoreSim {
        let mut core = CoreSim::new(CoreSimConfig::mercury_a7()).unwrap();
        core.preload(64, 16).unwrap();
        core
    }

    fn enabled_bundle() -> Telemetry {
        Telemetry::enabled(TelemetryConfig {
            sample_every: 8,
            timeline_interval: Duration::from_micros(200),
            timeline_columns: CORE_TIMELINE_COLUMNS.to_vec(),
        })
    }

    #[test]
    fn observed_run_records_spans_metrics_and_rows() {
        let mut core = fresh_core();
        let mut tele = enabled_bundle();
        let latency = run_observed(&mut core, &requests(64), &mut tele);

        assert_eq!(latency.count(), 64);
        assert_eq!(tele.metrics.counter_by_name("core.requests"), Some(64));
        assert_eq!(
            tele.metrics.counter_by_name("core.hits").unwrap()
                + tele.metrics.counter_by_name("core.misses").unwrap(),
            64
        );
        let hist = tele.metrics.histogram_by_name("core.rtt").unwrap();
        assert_eq!(hist.count(), 64);

        // Every 8th request sampled; spans tile their RTTs.
        assert_eq!(tele.tracer.spans().len(), 8);
        for span in tele.tracer.spans() {
            assert_eq!(span.phase_sum(), span.total());
            assert_eq!(span.phases.len(), 11);
        }
        // Spans are contiguous in sim-time: each sampled request's span
        // starts where the closed loop had advanced to.
        assert_eq!(tele.tracer.spans()[0].start, SimTime::ZERO);

        assert!(!tele.sampler.rows().is_empty());
        assert!(tele.sampler.to_csv().starts_with("t_us,kv_hit_rate"));
    }

    #[test]
    fn telemetry_is_passive_for_core_runs() {
        let reqs = requests(48);
        let mut dark_core = fresh_core();
        let mut dark = Telemetry::disabled();
        let baseline = run_observed(&mut dark_core, &reqs, &mut dark);

        let mut lit_core = fresh_core();
        let mut lit = enabled_bundle();
        let observed = run_observed(&mut lit_core, &reqs, &mut lit);

        assert_eq!(baseline.count(), observed.count());
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(baseline.percentile(q), observed.percentile(q), "q={q}");
        }
        assert!(dark.tracer.spans().is_empty());
        assert!(!lit.tracer.spans().is_empty());
    }
}
