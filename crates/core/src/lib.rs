//! `densekv` — an execution-driven simulator reproducing *Integrated
//! 3D-Stacked Server Designs for Increasing Physical Density of Key-Value
//! Stores* (Gutierrez et al., ASPLOS 2014).
//!
//! The paper proposes two 3D-stacked Memcached server architectures —
//! DRAM-based **Mercury** and flash-based **Iridium** — and evaluates
//! them against software baselines in gem5. This crate ties the
//! workspace's substrates together into that evaluation:
//!
//! * [`sim`] — a simulated stack core: requests flow through a real
//!   key-value store ([`densekv_kv`]), a TCP/IP + NIC cost model
//!   ([`densekv_net`]), a cache/core timing engine ([`densekv_cpu`]), and
//!   memory-device models ([`densekv_mem`]),
//! * [`sweep`] — the paper's 64 B–1 MB request-size sweeps,
//! * [`experiments`] — one runner per table and figure (Tables 1–4,
//!   Figures 4–8, the §6.5 thermal check, and the §6 headline ratios),
//! * [`openloop`] — Poisson-arrival latency-under-load (SLA) runs,
//! * [`stack_sim`] — an event-driven multi-core stack sharing one 10 GbE
//!   port, validating the §5.3 linear-scaling assumption,
//! * [`system`] — the top-level facade: build a Mercury/Iridium box and
//!   query throughput, density, power, and latency under load,
//! * [`report`] — text/CSV rendering of experiment output,
//! * [`paper`] — the published numbers, for side-by-side comparison.
//!
//! # Quick start
//!
//! ```
//! use densekv::sim::{CoreSim, CoreSimConfig};
//! use densekv_workload::{Op, Request};
//!
//! // One A7 core of a Mercury stack, with its 2 MB L2.
//! let mut core = CoreSim::new(CoreSimConfig::mercury_a7()).expect("valid config");
//! core.preload(64, 100).expect("fits");
//! let timing = core.execute(&Request {
//!     op: Op::Get,
//!     key: densekv_workload::key_bytes(0),
//!     value_bytes: 64,
//! });
//! // A 64 B GET on an A7 completes in about 90 µs (≈11 KTPS, Table 4).
//! assert!(timing.rtt.as_micros_f64() > 20.0);
//! assert!(timing.rtt.as_micros_f64() < 300.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod energy;
pub mod experiments;
pub mod observe;
pub mod openloop;
pub mod paper;
pub mod report;
pub mod sim;
pub mod slots;
pub mod stack_sim;
pub mod sweep;
pub mod system;

pub use energy::{
    measure_energy_point, run_energy_observed, EnergyBreakdown, EnergyObserver, EnergyRun,
    ENERGY_TIMELINE_COLUMNS, HYBRID_TIMELINE_COLUMNS,
};
pub use observe::{run_observed, CoreObserver, CORE_TIMELINE_COLUMNS};
pub use sim::{CoreSim, CoreSimConfig, PhaseBreakdown, RequestTiming};
pub use sweep::{measure_point, sweep_get_latency, sweep_sizes, OpPoint, SweepPoint};
pub use system::{System, SystemBuilder};
