//! Plain-text and CSV rendering for experiment output.

use core::fmt;

/// A simple aligned text table (and CSV serializer).
///
/// # Examples
///
/// ```
/// use densekv::report::TextTable;
///
/// let mut t = TextTable::new(vec!["config".into(), "tps".into()]);
/// t.row(vec!["Mercury-32".into(), "32.7M".into()]);
/// let text = t.to_string();
/// assert!(text.contains("Mercury-32"));
/// assert!(t.to_csv().starts_with("config,tps\n"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
    title: Option<String>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(header: Vec<String>) -> Self {
        TextTable {
            header,
            rows: Vec::new(),
            title: None,
        }
    }

    /// Sets a title printed above the table.
    pub fn with_title(mut self, title: &str) -> Self {
        self.title = Some(title.to_owned());
        self
    }

    /// Appends a row; short rows are padded with empty cells.
    ///
    /// # Panics
    ///
    /// Panics if the row has more cells than the header has columns.
    pub fn row(&mut self, mut cells: Vec<String>) {
        assert!(
            cells.len() <= self.header.len(),
            "row has {} cells but the table has {} columns",
            cells.len(),
            self.header.len()
        );
        cells.resize(self.header.len(), String::new());
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Renders as CSV (header first). Cells containing commas or quotes
    /// are quoted.
    pub fn to_csv(&self) -> String {
        fn escape(cell: &str) -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_owned()
            }
        }
        let mut out = String::new();
        out.push_str(
            &self
                .header
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        if let Some(title) = &self.title {
            writeln!(f, "{title}")?;
        }
        let line = |f: &mut fmt::Formatter<'_>| {
            for w in &widths {
                write!(f, "+{}", "-".repeat(w + 2))?;
            }
            writeln!(f, "+")
        };
        line(f)?;
        for (i, h) in self.header.iter().enumerate() {
            write!(f, "| {h:width$} ", width = widths[i])?;
        }
        writeln!(f, "|")?;
        line(f)?;
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                write!(f, "| {cell:>width$} ", width = widths[i])?;
            }
            writeln!(f, "|")?;
        }
        line(f)
    }
}

/// Formats a count with engineering suffixes (`1.23M`, `45.6K`).
pub fn si(value: f64) -> String {
    let abs = value.abs();
    if abs >= 1e9 {
        format!("{:.2}G", value / 1e9)
    } else if abs >= 1e6 {
        format!("{:.2}M", value / 1e6)
    } else if abs >= 1e3 {
        format!("{:.2}K", value / 1e3)
    } else {
        format!("{value:.2}")
    }
}

/// Formats a byte size the way the paper labels its x-axes
/// (`64`, `1K`, `1M`).
pub fn size_label(bytes: u64) -> String {
    if bytes >= 1 << 20 && bytes.is_multiple_of(1 << 20) {
        format!("{}M", bytes >> 20)
    } else if bytes >= 1 << 10 && bytes.is_multiple_of(1 << 10) {
        format!("{}K", bytes >> 10)
    } else {
        bytes.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new(vec!["a".into(), "bb".into()]).with_title("T");
        t.row(vec!["xxx".into(), "1".into()]);
        t.row(vec!["y".into()]);
        let s = t.to_string();
        assert!(s.starts_with("T\n"));
        assert!(s.contains("| xxx |"));
        assert_eq!(t.row_count(), 2);
    }

    #[test]
    fn csv_escapes() {
        let mut t = TextTable::new(vec!["a,b".into(), "c".into()]);
        t.row(vec!["say \"hi\"".into(), "2".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row has")]
    fn oversized_row_panics() {
        let mut t = TextTable::new(vec!["a".into()]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn si_suffixes() {
        assert_eq!(si(32_700_000.0), "32.70M");
        assert_eq!(si(54_770.0), "54.77K");
        assert_eq!(si(12.3), "12.30");
        assert_eq!(si(2.5e9), "2.50G");
    }

    #[test]
    fn size_labels_match_paper_axis() {
        assert_eq!(size_label(64), "64");
        assert_eq!(size_label(1 << 10), "1K");
        assert_eq!(size_label(512 << 10), "512K");
        assert_eq!(size_label(1 << 20), "1M");
    }
}
