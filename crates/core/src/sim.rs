//! The simulated stack core: executes real requests against a real store
//! while the timing models account for every instruction, cache miss,
//! memory-device access, frame, and wire byte.
//!
//! One `CoreSim` models one core of a Mercury or Iridium stack running
//! its own Memcached instance (the paper's deployment model, §4.1.4/§5.3)
//! serving a closed-loop client: TPS = 1/RTT (§5.3).

use std::collections::HashMap;

use densekv_cpu::engine::{EngineDelta, PhaseEngine, PhaseResult, PhaseSpec, StreamRef};
use densekv_cpu::CoreConfig;
use densekv_hybrid::{HybridMemory, TierSnapshot};
use densekv_kv::hash::hash_instructions;
use densekv_kv::store::{AccessTrace, KvStore, StoreConfig, StoreError};
use densekv_mem::dram::{DramCounters, DramStack};
use densekv_mem::flash::FlashCounters;
use densekv_mem::ftl::Ftl;
use densekv_mem::sram::SramBuffer;
use densekv_mem::{lines_for_bytes, AccessKind, MemoryTiming, PagePolicy};
use densekv_net::frame::MessageSizes;
use densekv_net::nic::NicMac;
use densekv_net::{TcpCostModel, Wire};
use densekv_sim::Duration;
use densekv_stack::{MemoryKind, StackConfig};
use densekv_workload::{Op, Request};

/// Line-address base of the packet-buffer region.
const BUFFER_BASE_LINE: u64 = 0xE00_0000; // 3.5 GiB into the device, in lines

/// Store-region base: the store's own address space (table + slab arena)
/// starts at the device origin.
const STORE_BASE_LINE: u64 = 0;

/// Instructions for protocol parsing per request.
const PARSE_INSTR: u64 = 1_800;
/// Instructions for GET metadata handling (lookup, item bookkeeping,
/// response header) — the Fig. 4 "Memcached" component.
const GET_STORE_INSTR: u64 = 5_500;
/// Instructions for PUT metadata handling (alloc, LRU, table update).
const PUT_STORE_INSTR: u64 = 16_000;
/// Copy-loop instructions per 64 B line moved.
const COPY_INSTR_PER_LINE: u64 = 4;
/// Metadata lines written by a PUT (bucket pointer, item header,
/// LRU/stats).
const PUT_METADATA_WRITES: usize = 3;

/// Largest value the store accepts (one slab page minus header/key
/// slack). The paper's 1 MB sweep point stores 1 MB minus this sliver;
/// the wire and copy traffic still use the requested size.
const MAX_STORED_VALUE: u64 = densekv_kv::slab::PAGE_BYTES - 512;

/// Clamps a requested value size to what one slab chunk can hold.
fn stored_len(value_bytes: u64) -> u64 {
    value_bytes.min(MAX_STORED_VALUE)
}

/// Configuration of one simulated core.
#[derive(Debug, Clone)]
pub struct CoreSimConfig {
    /// Core timing model.
    pub core: CoreConfig,
    /// Whether the core has a 2 MB L2.
    pub l2: bool,
    /// Stack memory technology.
    pub memory: MemoryKind,
    /// Slab-arena bytes for this core's store (a simulation-scale
    /// partition; the address layout is what matters for timing).
    pub store_bytes: u64,
    /// TCP/IP software cost model.
    pub tcp: TcpCostModel,
    /// The 10 GbE link to the client.
    pub wire: Wire,
    /// Client-side processing per request (request build + response
    /// handling) outside the server.
    pub client_overhead: Duration,
}

impl CoreSimConfig {
    /// A Mercury core with the given DRAM latency.
    pub fn mercury(core: CoreConfig, l2: bool, dram_latency: Duration) -> Self {
        CoreSimConfig {
            core,
            l2,
            memory: MemoryKind::Mercury(densekv_mem::dram::DramConfig::mercury(dram_latency)),
            store_bytes: 64 << 20,
            tcp: TcpCostModel::linux(),
            wire: Wire::ten_gbe(),
            client_overhead: Duration::from_micros(1),
        }
    }

    /// An Iridium core with the given flash read latency.
    pub fn iridium(core: CoreConfig, l2: bool, read_latency: Duration) -> Self {
        CoreSimConfig {
            memory: MemoryKind::Iridium(densekv_mem::flash::FlashConfig::iridium(read_latency)),
            ..CoreSimConfig::mercury(core, l2, Duration::from_nanos(10))
        }
    }

    /// The paper's headline configuration: A7 @ 1 GHz, 2 MB L2, 10 ns
    /// DRAM.
    pub fn mercury_a7() -> Self {
        CoreSimConfig::mercury(CoreConfig::a7_1ghz(), true, Duration::from_nanos(10))
    }

    /// The Iridium headline: A7 @ 1 GHz, 2 MB L2, 10 µs flash reads.
    pub fn iridium_a7() -> Self {
        CoreSimConfig::iridium(CoreConfig::a7_1ghz(), true, Duration::from_micros(10))
    }

    /// A Helios hybrid core: `dram_tier_bytes` of DRAM cache (this
    /// core's slice of the stack tier) over flash with the given read
    /// latency. A 0-byte tier degenerates to exactly the Iridium model.
    pub fn helios(
        core: CoreConfig,
        l2: bool,
        dram_tier_bytes: u64,
        read_latency: Duration,
    ) -> Self {
        CoreSimConfig {
            memory: MemoryKind::Hybrid(densekv_hybrid::HybridConfig::helios(
                dram_tier_bytes,
                read_latency,
            )),
            ..CoreSimConfig::mercury(core, l2, Duration::from_nanos(10))
        }
    }

    /// The Helios headline: A7 @ 1 GHz, 2 MB L2, 10 µs flash reads, and
    /// a per-core DRAM tier slice of `dram_tier_bytes`.
    pub fn helios_a7(dram_tier_bytes: u64) -> Self {
        CoreSimConfig::helios(
            CoreConfig::a7_1ghz(),
            true,
            dram_tier_bytes,
            Duration::from_micros(10),
        )
    }

    /// Derives the matching one-core-per-stack [`StackConfig`] (useful
    /// for the Fig. 5/6 single-stack studies).
    ///
    /// # Errors
    ///
    /// Propagates stack-validation errors.
    pub fn stack_config(&self) -> Result<StackConfig, densekv_stack::config::StackConfigError> {
        StackConfig::new(self.memory.clone(), self.core.clone(), 1, self.l2)
    }
}

/// Consecutive bit-identical observations of a request family before its
/// replay arms. Real executions keep running (and keep checking) until a
/// family has proved this many times in a row that its timing, phase
/// breakdown, engine delta, and device delta no longer change.
///
/// The streak proves the *recording* is stable; it cannot prove that a
/// replay is invisible to other traffic. A replay credits counters and
/// advances cursors but leaves cache *contents* untouched, so a later
/// real execution of a different family sees staler L1 sets than it
/// would have in a memo-free run and can time differently. The memo is
/// therefore exact only when every request after arming replays — the
/// single-request-shape loops the hot-path benches drive — and it ships
/// **disabled by default** ([`CoreSim::set_memo_enabled`]). The always-on
/// speedup for mixed request streams is the resident-L2 shortcut inside
/// [`PhaseEngine`], which is bit-exact unconditionally.
const MEMO_ARM_STREAK: u32 = 8;

/// Everything that determines a request's *timing inputs* once the store
/// operation itself has executed. Two requests with the same family key
/// run the exact same phase specs (instruction counts, reference counts,
/// stream lengths), so on a timing-stateless memory system their phase
/// walk is a pure function of warmed engine state — which is what the
/// arming streak verifies empirically before any replay happens.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct MemoKey {
    op: Op,
    key_len: u64,
    value_bytes: u64,
    /// GET hit / PUT success.
    hit: bool,
    /// Metadata probes: chain headers walked by the lookup/insert.
    probes: u32,
    /// Value lines streamed (0 when no value moved).
    value_lines: u64,
    /// Items the store evicted to make room (PUT only).
    evicted: u64,
}

/// The recorded effect of one real execution of a family: the outputs to
/// return and the engine/device side effects to replay.
#[derive(Debug, Clone, PartialEq)]
struct MemoEntry {
    timing: RequestTiming,
    breakdown: PhaseBreakdown,
    engine: EngineDelta,
    device: DeviceDelta,
}

/// Per-family memo state: the last observed entry and how many times in
/// a row it has repeated exactly.
#[derive(Debug, Clone)]
struct MemoFamily {
    entry: MemoEntry,
    streak: u32,
    armed: bool,
}

/// Device-side traffic counters, snapshot or per-request delta,
/// for whichever memory system backs the core. Hybrid stacks never memo
/// (the DRAM tier is stateful), so they have no variant here.
#[derive(Debug, Clone, PartialEq)]
enum DeviceDelta {
    Dram(DramCounters),
    Flash {
        flash: FlashCounters,
        buffer_bytes: u64,
    },
}

impl DeviceDelta {
    /// Counter growth since an `earlier` snapshot.
    fn delta(&self, earlier: &DeviceDelta) -> DeviceDelta {
        match (self, earlier) {
            (DeviceDelta::Dram(now), DeviceDelta::Dram(was)) => DeviceDelta::Dram(now.delta(was)),
            (
                DeviceDelta::Flash {
                    flash: now,
                    buffer_bytes: now_buf,
                },
                DeviceDelta::Flash {
                    flash: was,
                    buffer_bytes: was_buf,
                },
            ) => DeviceDelta::Flash {
                flash: now.delta(was),
                buffer_bytes: now_buf - was_buf,
            },
            _ => unreachable!("snapshots from the same StackMemory variant"),
        }
    }
}

/// The stack's memory system as one core sees it.
enum StackMemory {
    /// Mercury: DRAM holds both the store and the packet buffers.
    Dram(DramStack),
    /// Iridium: the store lives in flash behind a real FTL (so PUTs pay
    /// for garbage collection and wear-leveling); packet buffers in
    /// on-die SRAM.
    Flash { ftl: Ftl, buffer: SramBuffer },
    /// Helios: the store lives in flash behind the same FTL, fronted by
    /// a DRAM page-cache tier; packet buffers in on-die SRAM, exactly
    /// as on Iridium.
    Hybrid {
        tier: Box<HybridMemory>,
        buffer: SramBuffer,
    },
}

impl StackMemory {
    /// Runs a phase. The backing memory (behind the caches) is always the
    /// stack's main device — DRAM on Mercury, flash on Iridium, exactly as
    /// the paper models memory. When `stream_to_buffer` is set, the
    /// phase's bulk stream targets the packet buffers instead (DRAM again
    /// on Mercury; the logic-die SRAM on Iridium).
    fn run_phase(
        &mut self,
        engine: &mut PhaseEngine,
        spec: &PhaseSpec,
        stream_to_buffer: bool,
    ) -> PhaseResult {
        match self {
            StackMemory::Dram(d) => engine.run(spec, d),
            StackMemory::Flash { ftl, buffer } => {
                if stream_to_buffer {
                    engine.run_split(spec, ftl, Some(buffer))
                } else {
                    engine.run(spec, ftl)
                }
            }
            StackMemory::Hybrid { tier, buffer } => {
                if stream_to_buffer {
                    engine.run_split(spec, tier.as_mut(), Some(buffer))
                } else {
                    engine.run(spec, tier.as_mut())
                }
            }
        }
    }

    /// Bulk value write into the store. On Mercury this is `None` (the
    /// caller streams lines through the DRAM); on Iridium it returns the
    /// FTL's page-program time, including any garbage collection the
    /// write triggered.
    fn ftl_value_write(&mut self, offset: u64, bytes: u64) -> Option<Duration> {
        match self {
            StackMemory::Dram(_) => None,
            StackMemory::Flash { ftl, .. } => Some(ftl.write_range(offset, bytes)),
            StackMemory::Hybrid { tier, .. } => Some(tier.value_write(offset, bytes)),
        }
    }

    /// Account one buffer line moved by NIC DMA (no core stall).
    fn dma_buffer_line(&mut self, line: u64) {
        match self {
            StackMemory::Dram(d) => {
                let _ = d.line_access(line, AccessKind::Read);
            }
            StackMemory::Flash { buffer, .. } | StackMemory::Hybrid { buffer, .. } => {
                let _ = buffer.line_access(line, AccessKind::Read);
            }
        }
    }

    /// Bytes moved at the *device* (what Table 1's per-GB/s power rates
    /// apply to).
    fn device_bytes(&self) -> u64 {
        match self {
            StackMemory::Dram(d) => d.bytes_moved(),
            StackMemory::Flash { ftl, .. } => ftl.bytes_moved(),
            StackMemory::Hybrid { tier, .. } => tier.bytes_moved(),
        }
    }

    /// Device bytes split by tier: `(DRAM, flash)`. Single-tier stacks
    /// report all their traffic on their own tier, so per-tier pricing
    /// reduces exactly to the single-rate model for them.
    fn device_tier_bytes(&self) -> (u64, u64) {
        match self {
            StackMemory::Dram(d) => (d.bytes_moved(), 0),
            StackMemory::Flash { ftl, .. } => (0, ftl.bytes_moved()),
            StackMemory::Hybrid { tier, .. } => (tier.dram_bytes(), tier.flash_bytes()),
        }
    }

    fn reset_counters(&mut self) {
        match self {
            StackMemory::Dram(d) => d.reset_counters(),
            StackMemory::Flash { ftl, buffer } => {
                ftl.reset_counters();
                buffer.reset_counters();
            }
            StackMemory::Hybrid { tier, buffer } => {
                tier.reset_counters();
                buffer.reset_counters();
            }
        }
    }

    /// Whether this memory system's *timing* is stateless for `op`, i.e.
    /// whether replaying counter deltas instead of re-walking the device
    /// is exact:
    ///
    /// * Closed-page DRAM never consults row state — every line access
    ///   costs the same; GETs and PUTs both qualify. The open-page
    ///   ablation is stateful (row buffers) and never arms.
    /// * Flash line *reads* have fixed latency and touch no FTL state,
    ///   so GETs qualify; PUTs program pages and can trigger garbage
    ///   collection and wear-leveling — deeply stateful — and never arm.
    /// * The hybrid tier is an LRU page cache — stateful on every path.
    fn memo_eligible(&self, op: Op) -> bool {
        match (self, op) {
            (StackMemory::Dram(d), _) => d.config().page_policy == PagePolicy::Closed,
            (StackMemory::Flash { .. }, Op::Get) => true,
            (StackMemory::Flash { .. }, Op::Put) => false,
            (StackMemory::Hybrid { .. }, _) => false,
        }
    }

    /// Snapshot of every device traffic counter; `None` for memory
    /// systems that never memo.
    fn memo_counters(&self) -> Option<DeviceDelta> {
        match self {
            StackMemory::Dram(d) => Some(DeviceDelta::Dram(d.counters())),
            StackMemory::Flash { ftl, buffer } => Some(DeviceDelta::Flash {
                flash: ftl.flash().counters(),
                buffer_bytes: buffer.bytes_moved(),
            }),
            StackMemory::Hybrid { .. } => None,
        }
    }

    /// Replays a recorded per-request traffic delta onto the counters.
    fn credit(&mut self, delta: &DeviceDelta) {
        match (self, delta) {
            (StackMemory::Dram(d), DeviceDelta::Dram(c)) => d.credit(c),
            (
                StackMemory::Flash { ftl, buffer },
                DeviceDelta::Flash {
                    flash,
                    buffer_bytes,
                },
            ) => {
                ftl.credit_flash(flash);
                buffer.credit_bytes(*buffer_bytes);
            }
            _ => unreachable!("delta recorded on the same StackMemory variant"),
        }
    }
}

impl core::fmt::Debug for StackMemory {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            StackMemory::Dram(_) => write!(f, "StackMemory::Dram"),
            StackMemory::Flash { .. } => write!(f, "StackMemory::Flash"),
            StackMemory::Hybrid { .. } => write!(f, "StackMemory::Hybrid"),
        }
    }
}

/// Timing of one executed request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestTiming {
    /// Full round-trip time as the client observes it.
    pub rtt: Duration,
    /// Time on the serving core (all phases).
    pub server: Duration,
    /// Fig. 4's "Network Stack" component: RX + TX paths and data
    /// movement.
    pub network: Duration,
    /// Fig. 4's "Memcached" component: parse + store metadata.
    pub store: Duration,
    /// Fig. 4's "Hash Computation" component.
    pub hash: Duration,
    /// Whether a GET hit (PUTs report `true`).
    pub hit: bool,
}

/// One request's round trip decomposed into contiguous phases, in wire
/// order — the Fig. 4 breakdown at request granularity.
///
/// The invariant the tracing exporters rely on: the phases returned by
/// [`PhaseBreakdown::phases`] tile [`RequestTiming::rtt`] exactly, so a
/// span built from them sums to the end-to-end latency bit for bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PhaseBreakdown {
    /// Client-side processing (request build + response handling).
    pub client_overhead: Duration,
    /// Request serialization + propagation on the 10 GbE wire.
    pub req_wire: Duration,
    /// Request store-and-forward through the on-stack NIC MAC.
    pub req_nic: Duration,
    /// Kernel RX path (TCP/IP + payload landing in packet buffers).
    pub net_rx: Duration,
    /// Memcached protocol parse.
    pub parse: Duration,
    /// Key hash computation.
    pub hash: Duration,
    /// Store metadata operation (lookup or insert, bucket/item walks).
    pub store_op: Duration,
    /// Value movement between the store and the packet buffers.
    pub value_copy: Duration,
    /// Kernel TX path.
    pub net_tx: Duration,
    /// Response store-and-forward through the NIC MAC.
    pub resp_nic: Duration,
    /// Response serialization + propagation on the wire.
    pub resp_wire: Duration,
}

impl PhaseBreakdown {
    /// The phases in wire order, named for the trace viewer.
    #[must_use]
    pub fn phases(&self) -> [(&'static str, Duration); 11] {
        [
            ("client", self.client_overhead),
            ("req-wire", self.req_wire),
            ("req-nic", self.req_nic),
            ("net-rx", self.net_rx),
            ("parse", self.parse),
            ("hash", self.hash),
            ("store-op", self.store_op),
            ("value-copy", self.value_copy),
            ("net-tx", self.net_tx),
            ("resp-nic", self.resp_nic),
            ("resp-wire", self.resp_wire),
        ]
    }

    /// Server-side time (the six on-core phases).
    #[must_use]
    pub fn server(&self) -> Duration {
        self.net_rx + self.parse + self.hash + self.store_op + self.value_copy + self.net_tx
    }

    /// End-to-end round trip: the sum of every phase.
    #[must_use]
    pub fn total(&self) -> Duration {
        self.phases().iter().map(|&(_, d)| d).sum()
    }
}

/// One simulated stack core and its Memcached instance.
///
/// See the crate-level docs for an example.
pub struct CoreSim {
    config: CoreSimConfig,
    engine: PhaseEngine,
    store: KvStore,
    memory: StackMemory,
    mac: NicMac,
    /// Wire payload bytes exchanged (both directions).
    wire_bytes: u64,
    /// Whether the request memo layer may replay armed families.
    memo_enabled: bool,
    /// Per-family recorded executions; see [`MemoKey`] for the proof
    /// obligations and [`MEMO_ARM_STREAK`] for the arming rule.
    memo: HashMap<MemoKey, MemoFamily>,
    /// Requests served by replay instead of a phase walk.
    memo_hits: u64,
    /// Reused trace buffer (avoids per-request chain-vector allocation).
    trace_scratch: AccessTrace,
}

impl core::fmt::Debug for CoreSim {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("CoreSim")
            .field("core", &self.config.core.label())
            .field("memory", &self.memory)
            .finish_non_exhaustive()
    }
}

impl CoreSim {
    /// Builds the simulated core.
    ///
    /// # Errors
    ///
    /// Returns the store's error if the slab arena is too small to exist.
    pub fn new(config: CoreSimConfig) -> Result<Self, StoreError> {
        if config.store_bytes < 1 << 20 {
            return Err(StoreError::OutOfMemory);
        }
        let engine = if config.l2 {
            PhaseEngine::with_l2(config.core.clone())
        } else {
            PhaseEngine::without_l2(config.core.clone())
        };
        let memory = match &config.memory {
            MemoryKind::Mercury(dram) => StackMemory::Dram(DramStack::new(dram.clone())),
            MemoryKind::Iridium(flash) => {
                // The FTL only needs to cover this core's simulated store
                // partition (plus over-provisioning), not the whole
                // 19.8 GB stack — timing is per-page and identical, and
                // construction stays cheap for sweeps that build many
                // cores.
                let mut sized = flash.clone();
                let per_block = u64::from(sized.pages_per_block) * sized.page_bytes;
                let needed_blocks =
                    (config.store_bytes * 2).div_ceil(per_block * u64::from(sized.planes));
                sized.blocks_per_plane = (needed_blocks as u32).max(8);
                StackMemory::Flash {
                    ftl: Ftl::new(sized, 1.0 / 16.0),
                    buffer: SramBuffer::on_die(),
                }
            }
            MemoryKind::Hybrid(hybrid) => {
                // Same flash down-sizing as Iridium so the degenerate
                // 0-byte tier reproduces its timing bit for bit.
                let mut sized = hybrid.clone();
                let per_block = u64::from(sized.flash.pages_per_block) * sized.flash.page_bytes;
                let needed_blocks =
                    (config.store_bytes * 2).div_ceil(per_block * u64::from(sized.flash.planes));
                sized.flash.blocks_per_plane = (needed_blocks as u32).max(8);
                StackMemory::Hybrid {
                    tier: Box::new(HybridMemory::new(sized)),
                    buffer: SramBuffer::on_die(),
                }
            }
        };
        Ok(CoreSim {
            engine,
            store: KvStore::new(StoreConfig::with_capacity(config.store_bytes)),
            memory,
            mac: NicMac::for_cores(1),
            wire_bytes: 0,
            memo_enabled: false,
            memo: HashMap::new(),
            memo_hits: 0,
            trace_scratch: AccessTrace::default(),
            config,
        })
    }

    /// The configuration this core was built from.
    pub fn config(&self) -> &CoreSimConfig {
        &self.config
    }

    /// The store's statistics (hits, misses, evictions…).
    pub fn store_stats(&self) -> densekv_kv::StoreStats {
        self.store.stats()
    }

    /// Per-level cache hit/miss counters of the core's hierarchy.
    pub fn cache_stats(&self) -> densekv_cpu::CacheHierarchyStats {
        self.engine.cache_stats()
    }

    /// Forces the engine's full LRU walk (differential tests only).
    #[doc(hidden)]
    pub fn disable_l2_residency_shortcut(&mut self) {
        self.engine.disable_l2_residency_shortcut();
    }

    /// Loads `population` keys of `value_bytes` each (untimed), so
    /// subsequent GETs hit.
    ///
    /// # Errors
    ///
    /// Propagates store errors (e.g. the population does not fit).
    pub fn preload(&mut self, value_bytes: u64, population: u64) -> Result<(), StoreError> {
        for id in 0..population {
            let key = densekv_workload::key_bytes(id);
            self.store
                .set(&key, vec![0xAB; stored_len(value_bytes) as usize], None, 0)?;
        }
        Ok(())
    }

    /// Loads a single key of `value_bytes` (untimed).
    ///
    /// # Errors
    ///
    /// Propagates store errors.
    pub fn preload_one(&mut self, key: &[u8], value_bytes: u64) -> Result<(), StoreError> {
        self.store
            .set(key, vec![0xAB; stored_len(value_bytes) as usize], None, 0)
            .map(|_| ())
    }

    /// Device bytes moved since the last counter reset.
    pub fn device_bytes(&self) -> u64 {
        self.memory.device_bytes()
    }

    /// Device bytes split `(DRAM tier, flash array)` since the last
    /// counter reset. Single-tier stacks report everything on their own
    /// tier, so the two always sum to [`CoreSim::device_bytes`].
    pub fn device_tier_bytes(&self) -> (u64, u64) {
        self.memory.device_tier_bytes()
    }

    /// A snapshot of the hybrid DRAM tier's counters, if this core runs
    /// on a Helios-style memory; `None` for pure Mercury/Iridium.
    pub fn tier_stats(&self) -> Option<TierSnapshot> {
        match &self.memory {
            StackMemory::Hybrid { tier, .. } => Some(tier.snapshot()),
            _ => None,
        }
    }

    /// Wire payload bytes exchanged since the last counter reset.
    pub fn wire_bytes(&self) -> u64 {
        self.wire_bytes
    }

    /// Resets the bandwidth counters (not the caches or the store).
    pub fn reset_counters(&mut self) {
        self.memory.reset_counters();
        self.wire_bytes = 0;
    }

    /// Enables or disables the request memo layer. Disabling also drops
    /// every recorded family, so re-enabling starts proving streaks from
    /// scratch.
    ///
    /// **Off by default.** Replay is bit-exact only while every request
    /// after arming replays (a single repeated request shape, as the
    /// hot-path benches drive); in mixed request streams a later real
    /// execution sees frozen cache contents and can time differently
    /// than a memo-free run — see [`MEMO_ARM_STREAK`]. The experiment
    /// drivers leave it off so their CSVs stay byte-identical.
    pub fn set_memo_enabled(&mut self, enabled: bool) {
        self.memo_enabled = enabled;
        if !enabled {
            self.memo.clear();
            self.memo_hits = 0;
        }
    }

    /// Whether the request memo layer is enabled.
    pub fn memo_enabled(&self) -> bool {
        self.memo_enabled
    }

    /// Requests served by memo replay instead of a full phase walk.
    pub fn memo_hits(&self) -> u64 {
        self.memo_hits
    }

    /// Runs a phase whose stream (if any) targets the store device.
    fn run_store(&mut self, spec: &PhaseSpec) -> PhaseResult {
        self.memory.run_phase(&mut self.engine, spec, false)
    }

    /// Runs a phase whose stream (if any) targets the packet buffers.
    fn run_buffer(&mut self, spec: &PhaseSpec) -> PhaseResult {
        self.memory.run_phase(&mut self.engine, spec, true)
    }

    /// Converts a store-space byte offset to a device line address.
    fn store_line(offset: u64) -> u64 {
        STORE_BASE_LINE + offset / densekv_mem::LINE_BYTES
    }

    /// Executes one request end-to-end and returns its timing.
    pub fn execute(&mut self, request: &Request) -> RequestTiming {
        self.execute_breakdown(request).0
    }

    /// Executes one request and returns its timing together with the
    /// per-phase decomposition of the round trip. [`CoreSim::execute`]
    /// is this call with the breakdown discarded — both run the same
    /// code, so observed and unobserved executions are identical.
    pub fn execute_breakdown(&mut self, request: &Request) -> (RequestTiming, PhaseBreakdown) {
        self.execute_parts(request.op, &request.key, request.value_bytes)
    }

    /// [`CoreSim::execute_breakdown`] without a materialized
    /// [`Request`]: slot-based drivers (the sweeps and the open-loop
    /// runner) pass key bytes straight out of their request-slot arena,
    /// so no per-request `Vec` allocation happens on the hot path.
    pub fn execute_parts(
        &mut self,
        op: Op,
        key: &[u8],
        value_bytes: u64,
    ) -> (RequestTiming, PhaseBreakdown) {
        let key_len = key.len() as u64;
        let sizes = match op {
            Op::Get => MessageSizes::get(key_len, value_bytes),
            Op::Put => MessageSizes::put(key_len, value_bytes),
        };

        // --- The store operation itself (real data structures) runs
        // first: the store never consults the timing models, so hoisting
        // it ahead of the phase walk is observable-neutral — and its
        // trace both parameterizes the phase specs and identifies the
        // request's memo family.
        let mut trace = std::mem::take(&mut self.trace_scratch);
        let (hit, evicted) = match op {
            Op::Get => (self.store.get_traced(key, 0, &mut trace).is_some(), 0),
            Op::Put => {
                match self
                    .store
                    .set(key, vec![0xCD; stored_len(value_bytes) as usize], None, 0)
                {
                    Ok(set) => {
                        trace = set.trace;
                        (true, set.evicted)
                    }
                    Err(_) => {
                        trace = AccessTrace::default();
                        (false, 0)
                    }
                }
            }
        };
        let value_lines = trace
            .value
            .map(|(_, len)| lines_for_bytes(len.max(value_bytes)))
            .unwrap_or(0);

        // --- Memo replay: when this family has a proven-stable
        // recording, credit its engine and device effects and return the
        // recorded outputs — bit-identical to the walk it replaces.
        let memo_key = (self.memo_enabled && self.memory.memo_eligible(op)).then_some(MemoKey {
            op,
            key_len,
            value_bytes,
            hit,
            probes: trace.chain_offsets.len() as u32,
            value_lines,
            evicted,
        });
        if let Some(k) = memo_key {
            if let Some(family) = self.memo.get(&k) {
                if family.armed {
                    self.engine.apply_replay(&family.entry.engine);
                    self.memory.credit(&family.entry.device);
                    self.memo_hits += 1;
                    self.wire_bytes += sizes.request_payload + sizes.response_payload;
                    self.trace_scratch = trace;
                    return (family.entry.timing, family.entry.breakdown);
                }
            }
        }

        // --- Real execution, with before-state captured so the family
        // can record (or keep proving) its effect. Recording waits for
        // [`PhaseEngine::warm`]: during the cold cache fill, timing sits
        // on long locally-constant plateaus that a streak check alone
        // would arm on — freezing cold-cache timing into the replay.
        let snapshot = (memo_key.is_some() && self.engine.warm()).then(|| {
            (
                self.engine.replay_snapshot(),
                self.memory
                    .memo_counters()
                    .expect("memo-eligible memory snapshots counters"),
            )
        });

        // --- Receive path: kernel RX + payload landing in buffers.
        let rx = self.config.tcp.rx_cost(sizes.request_frames());
        let rx_result = self.run_buffer(&PhaseSpec {
            name: "net-rx",
            instructions: rx.instructions,
            ifetch_footprint_lines: 3_000,
            ifetch_per_kinstr: 12,
            kernel_refs: rx.kernel_refs,
            store_refs: Vec::new(),
            stream: Some(StreamRef {
                start_line: BUFFER_BASE_LINE,
                lines: lines_for_bytes(sizes.request_payload),
                kind: AccessKind::Write,
            }),
            uncached_ops: rx.uncached_ops,
        });

        // --- Protocol parse.
        let parse_result = self.run_buffer(&PhaseSpec {
            name: "parse",
            instructions: PARSE_INSTR,
            ifetch_footprint_lines: 200,
            ifetch_per_kinstr: 6,
            kernel_refs: 4,
            store_refs: Vec::new(),
            stream: None,
            uncached_ops: 0,
        });

        // --- Key hash.
        let hash_result = self.run_buffer(&PhaseSpec {
            name: "hash",
            instructions: hash_instructions(key.len()),
            ifetch_footprint_lines: 64,
            ifetch_per_kinstr: 2,
            kernel_refs: 0,
            store_refs: Vec::new(),
            stream: None,
            uncached_ops: 0,
        });

        // --- Store metadata + value movement, priced from the trace.
        let (store_result, copy_result) = match op {
            Op::Get => self.get_phases(&trace, value_bytes),
            Op::Put => self.put_phases(&trace, value_bytes),
        };

        // --- Transmit path: kernel TX + NIC DMA out of the buffers.
        let tx = self.config.tcp.tx_cost(sizes.response_frames());
        let tx_result = self.run_buffer(&PhaseSpec {
            name: "net-tx",
            instructions: tx.instructions,
            ifetch_footprint_lines: 2_500,
            ifetch_per_kinstr: 12,
            kernel_refs: tx.kernel_refs,
            store_refs: Vec::new(),
            stream: None,
            uncached_ops: tx.uncached_ops,
        });
        // NIC DMA drains the response from the buffers: bandwidth, not
        // core stall (it overlaps wire serialization).
        let dma_lines = lines_for_bytes(sizes.response_payload);
        for i in 0..dma_lines {
            self.memory.dma_buffer_line(BUFFER_BASE_LINE + i);
        }

        self.wire_bytes += sizes.request_payload + sizes.response_payload;

        let breakdown = PhaseBreakdown {
            client_overhead: self.config.client_overhead,
            req_wire: self.config.wire.one_way(sizes.request_payload),
            req_nic: self.mac.message_latency(sizes.request_frames()),
            net_rx: rx_result.time,
            parse: parse_result.time,
            hash: hash_result.time,
            store_op: store_result.time,
            value_copy: copy_result.time,
            net_tx: tx_result.time,
            resp_nic: self.mac.message_latency(sizes.response_frames()),
            resp_wire: self.config.wire.one_way(sizes.response_payload),
        };
        let timing = RequestTiming {
            rtt: breakdown.total(),
            server: breakdown.server(),
            network: breakdown.net_rx + breakdown.net_tx + breakdown.value_copy,
            store: breakdown.parse + breakdown.store_op,
            hash: breakdown.hash,
            hit,
        };

        // --- Record: a family arms only after MEMO_ARM_STREAK
        // consecutive bit-identical recordings (outputs AND effects).
        if let (Some(k), Some((engine_before, device_before))) = (memo_key, snapshot) {
            let entry = MemoEntry {
                timing,
                breakdown,
                engine: self.engine.replay_delta(&engine_before),
                device: self
                    .memory
                    .memo_counters()
                    .expect("memo-eligible memory snapshots counters")
                    .delta(&device_before),
            };
            match self.memo.entry(k) {
                std::collections::hash_map::Entry::Occupied(mut slot) => {
                    let family = slot.get_mut();
                    if family.entry == entry {
                        family.streak += 1;
                        if family.streak >= MEMO_ARM_STREAK {
                            family.armed = true;
                        }
                    } else {
                        *family = MemoFamily {
                            entry,
                            streak: 1,
                            armed: false,
                        };
                    }
                }
                std::collections::hash_map::Entry::Vacant(slot) => {
                    slot.insert(MemoFamily {
                        entry,
                        streak: 1,
                        armed: false,
                    });
                }
            }
        }
        self.trace_scratch = trace;
        (timing, breakdown)
    }

    /// Executes a batched multi-GET (`get k1 k2 …`): one network
    /// round-trip, one parse, then per-key hash/lookup/copy work. This is
    /// the classic Memcached batching optimization — with ~87 % of a
    /// small request spent in the network stack (Fig. 4), batching
    /// amortizes exactly the dominant cost.
    ///
    /// Returns the timing of the whole exchange plus the number of hits.
    ///
    /// # Panics
    ///
    /// Panics if `keys` is empty.
    pub fn execute_multiget(&mut self, keys: &[Vec<u8>], value_bytes: u64) -> (RequestTiming, u32) {
        assert!(!keys.is_empty(), "multiget needs at least one key");
        let key_len = keys[0].len() as u64;
        let sizes = MessageSizes::multiget(key_len, value_bytes, keys.len() as u64);

        let rx = self.config.tcp.rx_cost(sizes.request_frames());
        let rx_result = self.run_buffer(&PhaseSpec {
            name: "net-rx",
            instructions: rx.instructions,
            ifetch_footprint_lines: 3_000,
            ifetch_per_kinstr: 12,
            kernel_refs: rx.kernel_refs,
            store_refs: Vec::new(),
            stream: Some(StreamRef {
                start_line: BUFFER_BASE_LINE,
                lines: lines_for_bytes(sizes.request_payload),
                kind: AccessKind::Write,
            }),
            uncached_ops: rx.uncached_ops,
        });
        let parse_result = self.run_buffer(&PhaseSpec {
            name: "parse",
            instructions: PARSE_INSTR + 200 * (keys.len() as u64 - 1),
            ifetch_footprint_lines: 200,
            ifetch_per_kinstr: 6,
            kernel_refs: 4,
            store_refs: Vec::new(),
            stream: None,
            uncached_ops: 0,
        });

        let mut hash_time = Duration::ZERO;
        let mut store_time = Duration::ZERO;
        let mut copy_time = Duration::ZERO;
        let mut hits = 0;
        for key in keys {
            let hash_result = self.run_buffer(&PhaseSpec {
                name: "hash",
                instructions: hash_instructions(key.len()),
                ifetch_footprint_lines: 64,
                ifetch_per_kinstr: 2,
                kernel_refs: 0,
                store_refs: Vec::new(),
                stream: None,
                uncached_ops: 0,
            });
            hash_time += hash_result.time;
            let mut trace = std::mem::take(&mut self.trace_scratch);
            let hit = self.store.get_traced(key, 0, &mut trace).is_some();
            let (store_result, copy_result) = self.get_phases(&trace, value_bytes);
            self.trace_scratch = trace;
            store_time += store_result.time;
            copy_time += copy_result.time;
            if hit {
                hits += 1;
            }
        }

        let tx = self.config.tcp.tx_cost(sizes.response_frames());
        let tx_result = self.run_buffer(&PhaseSpec {
            name: "net-tx",
            instructions: tx.instructions,
            ifetch_footprint_lines: 2_500,
            ifetch_per_kinstr: 12,
            kernel_refs: tx.kernel_refs,
            store_refs: Vec::new(),
            stream: None,
            uncached_ops: tx.uncached_ops,
        });
        for i in 0..lines_for_bytes(sizes.response_payload) {
            self.memory.dma_buffer_line(BUFFER_BASE_LINE + i);
        }
        self.wire_bytes += sizes.request_payload + sizes.response_payload;

        let server = rx_result.time
            + parse_result.time
            + hash_time
            + store_time
            + copy_time
            + tx_result.time;
        let rtt = self.config.client_overhead
            + self.config.wire.one_way(sizes.request_payload)
            + self.mac.message_latency(sizes.request_frames())
            + server
            + self.mac.message_latency(sizes.response_frames())
            + self.config.wire.one_way(sizes.response_payload);
        (
            RequestTiming {
                rtt,
                server,
                network: rx_result.time + tx_result.time + copy_time,
                store: parse_result.time + store_time,
                hash: hash_time,
                hit: hits == keys.len() as u32,
            },
            hits,
        )
    }

    /// GET phase walk: metadata refs and value stream priced from the
    /// [`AccessTrace`] the already-executed lookup produced.
    fn get_phases(&mut self, trace: &AccessTrace, value_bytes: u64) -> (PhaseResult, PhaseResult) {
        let metadata: Vec<u64> = trace.metadata_offsets().map(Self::store_line).collect();
        let store_result = self.run_store(&PhaseSpec {
            name: "store-get",
            instructions: GET_STORE_INSTR,
            ifetch_footprint_lines: 1_500,
            ifetch_per_kinstr: 10,
            kernel_refs: 6,
            store_refs: metadata,
            stream: None,
            uncached_ops: 0,
        });

        // Value moves store -> CPU -> socket buffer.
        let mut copy_result = PhaseResult::default();
        if let Some((offset, len)) = trace.value {
            let lines = lines_for_bytes(len.max(value_bytes));
            let read = self.run_store(&PhaseSpec {
                name: "value-copy",
                instructions: COPY_INSTR_PER_LINE * lines,
                ifetch_footprint_lines: 64,
                ifetch_per_kinstr: 2,
                kernel_refs: 0,
                store_refs: Vec::new(),
                stream: Some(StreamRef {
                    start_line: Self::store_line(offset),
                    lines,
                    kind: AccessKind::Read,
                }),
                uncached_ops: 0,
            });
            let write = self.run_buffer(&PhaseSpec {
                name: "value-copy",
                instructions: 0,
                ifetch_footprint_lines: 64,
                ifetch_per_kinstr: 2,
                kernel_refs: 0,
                store_refs: Vec::new(),
                stream: Some(StreamRef {
                    start_line: BUFFER_BASE_LINE,
                    lines,
                    kind: AccessKind::Write,
                }),
                uncached_ops: 0,
            });
            copy_result = read;
            copy_result.merge(&write);
        }
        (store_result, copy_result)
    }

    /// PUT phase walk: metadata refs + metadata writes + value stream
    /// priced from the [`AccessTrace`] the already-executed insert
    /// produced.
    fn put_phases(&mut self, trace: &AccessTrace, value_bytes: u64) -> (PhaseResult, PhaseResult) {
        let metadata: Vec<u64> = trace.metadata_offsets().map(Self::store_line).collect();
        // Metadata updates dirty a few lines; charge them as a short
        // write burst at the head of the item.
        let first_meta = metadata.first().copied().unwrap_or(0);
        let store_result = self.run_store(&PhaseSpec {
            name: "store-put",
            instructions: PUT_STORE_INSTR,
            ifetch_footprint_lines: 1_800,
            ifetch_per_kinstr: 10,
            kernel_refs: 10,
            store_refs: metadata,
            stream: Some(StreamRef {
                start_line: first_meta,
                lines: PUT_METADATA_WRITES as u64,
                kind: AccessKind::Write,
            }),
            uncached_ops: 0,
        });

        let mut copy_result = PhaseResult::default();
        if let Some((offset, len)) = trace.value {
            let lines = lines_for_bytes(len.max(value_bytes));
            // Read the payload out of the socket buffer...
            let read = self.run_buffer(&PhaseSpec {
                name: "value-copy",
                instructions: COPY_INSTR_PER_LINE * lines,
                ifetch_footprint_lines: 64,
                ifetch_per_kinstr: 2,
                kernel_refs: 0,
                store_refs: Vec::new(),
                stream: Some(StreamRef {
                    start_line: BUFFER_BASE_LINE,
                    lines,
                    kind: AccessKind::Read,
                }),
                uncached_ops: 0,
            });
            // ...and write it into the item's chunk. On Iridium the
            // write goes through the FTL as whole-page programs (with
            // garbage collection in the loop); on Mercury it streams
            // through the DRAM.
            let write_bytes = len.max(value_bytes);
            let write = match self.memory.ftl_value_write(offset, write_bytes) {
                Some(ftl_latency) => PhaseResult {
                    time: ftl_latency,
                    busy: Duration::ZERO,
                    stall: ftl_latency,
                    mem_refs: lines,
                    l2_hits: 0,
                    mem_bytes: 0, // the FTL's device counter tracks bytes
                },
                None => self.run_store(&PhaseSpec {
                    name: "value-copy",
                    instructions: 0,
                    ifetch_footprint_lines: 64,
                    ifetch_per_kinstr: 2,
                    kernel_refs: 0,
                    store_refs: Vec::new(),
                    stream: Some(StreamRef {
                        start_line: Self::store_line(offset),
                        lines,
                        kind: AccessKind::Write,
                    }),
                    uncached_ops: 0,
                }),
            };
            copy_result = read;
            copy_result.merge(&write);
        }
        (store_result, copy_result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get_request(size: u64) -> Request {
        Request {
            op: Op::Get,
            key: densekv_workload::key_bytes(1),
            value_bytes: size,
        }
    }

    fn put_request(size: u64) -> Request {
        Request {
            op: Op::Put,
            key: densekv_workload::key_bytes(1),
            value_bytes: size,
        }
    }

    fn warmed(config: CoreSimConfig, size: u64) -> CoreSim {
        let mut core = CoreSim::new(config).unwrap();
        core.preload(size, 16).unwrap();
        for _ in 0..300 {
            core.execute(&get_request(size));
        }
        core.reset_counters();
        core
    }

    #[test]
    fn breakdown_phases_tile_the_rtt() {
        let mut core = warmed(CoreSimConfig::mercury_a7(), 1024);
        for request in [get_request(1024), put_request(1024)] {
            let (timing, b) = core.execute_breakdown(&request);
            assert_eq!(b.total(), timing.rtt, "phases must sum to the RTT");
            assert_eq!(b.server(), timing.server);
            let phase_sum: Duration = b.phases().iter().map(|&(_, d)| d).sum();
            assert_eq!(phase_sum, timing.rtt);
            // Every named phase is present exactly once.
            assert_eq!(b.phases().len(), 11);
        }
        // The executed requests exercised the cache hierarchy.
        let cache = core.cache_stats();
        assert!(cache.l1i.hits + cache.l1i.misses > 0);
        assert!(cache.l2.expect("A7 config has an L2").hits > 0);
    }

    #[test]
    fn a7_mercury_64b_get_near_11ktps() {
        // Table 4 calibration: 8.44 MTPS / 768 cores = 11.0 KTPS/core.
        let mut core = warmed(CoreSimConfig::mercury_a7(), 64);
        let t = core.execute(&get_request(64));
        assert!(t.hit);
        let tps = 1.0 / t.rtt.as_secs_f64();
        assert!(
            (9_000.0..13_500.0).contains(&tps),
            "A7 Mercury 64 B GET: {tps:.0} TPS (rtt {})",
            t.rtt
        );
    }

    #[test]
    fn a15_beats_a7_by_2_to_3x() {
        let mut a7 = warmed(CoreSimConfig::mercury_a7(), 64);
        let mut a15 = warmed(
            CoreSimConfig::mercury(CoreConfig::a15_1ghz(), true, Duration::from_nanos(10)),
            64,
        );
        let t7 = a7.execute(&get_request(64)).rtt.as_secs_f64();
        let t15 = a15.execute(&get_request(64)).rtt.as_secs_f64();
        let ratio = t7 / t15;
        assert!(
            (1.8..3.5).contains(&ratio),
            "A15 should be ~2.5-3x the A7: {ratio:.2}"
        );
    }

    #[test]
    fn iridium_a7_64b_get_near_5ktps() {
        // Table 4: 16.49 MTPS / 3072 cores = 5.4 KTPS/core.
        let mut core = warmed(CoreSimConfig::iridium_a7(), 64);
        let t = core.execute(&get_request(64));
        let tps = 1.0 / t.rtt.as_secs_f64();
        assert!(
            (4_000.0..7_500.0).contains(&tps),
            "A7 Iridium 64 B GET: {tps:.0} TPS (rtt {})",
            t.rtt
        );
    }

    #[test]
    fn iridium_put_below_about_1ktps() {
        // §6.2 / Fig. 6: flash PUTs average below ~1 KTPS.
        let mut core = warmed(CoreSimConfig::iridium_a7(), 64);
        let t = core.execute(&put_request(64));
        let tps = 1.0 / t.rtt.as_secs_f64();
        assert!(tps < 1_600.0, "Iridium 64 B PUT: {tps:.0} TPS");
    }

    #[test]
    fn helios_zero_tier_matches_iridium_exactly() {
        // Degenerate limit: a Helios core with a 0-byte DRAM tier is an
        // Iridium core, request for request.
        let mut iridium = CoreSim::new(CoreSimConfig::iridium_a7()).unwrap();
        let mut helios = CoreSim::new(CoreSimConfig::helios_a7(0)).unwrap();
        iridium.preload(256, 16).unwrap();
        helios.preload(256, 16).unwrap();
        for i in 0..50 {
            let request = if i % 5 == 0 {
                put_request(256)
            } else {
                get_request(256)
            };
            let a = iridium.execute(&request);
            let b = helios.execute(&request);
            assert_eq!(a, b, "request {i} diverged");
        }
        assert_eq!(iridium.device_bytes(), helios.device_bytes());
    }

    #[test]
    fn helios_warm_tier_sits_between_iridium_and_mercury() {
        // A tier larger than the touched working set serves re-references
        // at DRAM speed, so warm GETs leave flash latency behind.
        let mut iridium = warmed(CoreSimConfig::iridium_a7(), 256);
        let mut helios = warmed(CoreSimConfig::helios_a7(64 << 20), 256);
        let mut mercury = warmed(CoreSimConfig::mercury_a7(), 256);
        let flash = iridium.execute(&get_request(256)).rtt;
        let hybrid = helios.execute(&get_request(256)).rtt;
        let dram = mercury.execute(&get_request(256)).rtt;
        assert!(
            hybrid < flash,
            "warm Helios GET ({hybrid}) should beat Iridium ({flash})"
        );
        assert!(hybrid >= dram, "Helios cannot beat pure DRAM ({dram})");
        assert!(
            hybrid.as_secs_f64() < dram.as_secs_f64() * 1.01,
            "warm hits should converge to Mercury speed ({hybrid} vs {dram})"
        );
        let stats = helios.tier_stats().expect("hybrid core exposes tier stats");
        assert!(
            stats.hit_rate() > 0.9,
            "warm tier hit rate {}",
            stats.hit_rate()
        );
        let (dram_bytes, flash_bytes) = helios.device_tier_bytes();
        assert_eq!(dram_bytes + flash_bytes, helios.device_bytes());
        assert!(dram_bytes > 0);
    }

    #[test]
    fn fig4_network_dominates_small_gets() {
        // Fig. 4a: ~87% network / ~10% store / 2-3% hash below 4 KB.
        let mut core = warmed(
            CoreSimConfig::mercury(CoreConfig::a15_1ghz(), true, Duration::from_nanos(10)),
            256,
        );
        let t = core.execute(&get_request(256));
        let total = t.server.as_secs_f64();
        let net = t.network.as_secs_f64() / total;
        let store = t.store.as_secs_f64() / total;
        let hash = t.hash.as_secs_f64() / total;
        assert!((0.75..0.95).contains(&net), "network share {net:.2}");
        assert!((0.04..0.2).contains(&store), "store share {store:.2}");
        assert!(hash < 0.08, "hash share {hash:.2}");
    }

    #[test]
    fn put_spends_more_in_store_than_get() {
        let mut core = warmed(CoreSimConfig::mercury_a7(), 1024);
        let g = core.execute(&get_request(1024));
        let p = core.execute(&put_request(1024));
        assert!(p.store > g.store, "Fig. 4b: PUT metadata work is larger");
    }

    #[test]
    fn larger_values_take_longer() {
        let mut core = warmed(CoreSimConfig::mercury_a7(), 64);
        core.preload(1 << 16, 4).unwrap();
        let small = core.execute(&get_request(64)).rtt;
        let big = core
            .execute(&Request {
                op: Op::Get,
                key: densekv_workload::key_bytes(2),
                value_bytes: 1 << 16,
            })
            .rtt;
        assert!(big > small * 2, "64 KB ({big}) vs 64 B ({small})");
    }

    #[test]
    fn memory_latency_sensitivity_without_l2() {
        let fast = {
            let mut c = warmed(
                CoreSimConfig::mercury(CoreConfig::a7_1ghz(), false, Duration::from_nanos(10)),
                64,
            );
            c.execute(&get_request(64)).rtt
        };
        let slow = {
            let mut c = warmed(
                CoreSimConfig::mercury(CoreConfig::a7_1ghz(), false, Duration::from_nanos(100)),
                64,
            );
            c.execute(&get_request(64)).rtt
        };
        let ratio = slow.as_secs_f64() / fast.as_secs_f64();
        assert!(
            ratio > 1.3,
            "no-L2 cores must feel DRAM latency (Fig. 5d): {ratio:.2}"
        );
    }

    #[test]
    fn l2_insulates_from_memory_latency() {
        let fast = {
            let mut c = warmed(CoreSimConfig::mercury_a7(), 64);
            c.execute(&get_request(64)).rtt
        };
        let slow = {
            let mut c = warmed(
                CoreSimConfig::mercury(CoreConfig::a7_1ghz(), true, Duration::from_nanos(100)),
                64,
            );
            c.execute(&get_request(64)).rtt
        };
        let ratio = slow.as_secs_f64() / fast.as_secs_f64();
        assert!(
            ratio < 1.15,
            "with an L2 the Fig. 5c curves are nearly flat: {ratio:.2}"
        );
    }

    #[test]
    fn iridium_without_l2_collapses() {
        // §6.2: removing the L2 yields average TPS below 100.
        let mut core = CoreSim::new(CoreSimConfig::iridium(
            CoreConfig::a7_1ghz(),
            false,
            Duration::from_micros(10),
        ))
        .unwrap();
        core.preload(64, 16).unwrap();
        for _ in 0..5 {
            core.execute(&get_request(64));
        }
        let t = core.execute(&get_request(64));
        let tps = 1.0 / t.rtt.as_secs_f64();
        assert!(tps < 150.0, "no-L2 Iridium: {tps:.0} TPS");
    }

    #[test]
    fn counters_track_traffic() {
        let mut core = warmed(CoreSimConfig::mercury_a7(), 4096);
        core.execute(&get_request(4096));
        assert!(core.device_bytes() > 4096, "value + buffers moved");
        assert!(core.wire_bytes() > 4096);
        core.reset_counters();
        assert_eq!(core.device_bytes(), 0);
        assert_eq!(core.wire_bytes(), 0);
    }

    #[test]
    fn get_miss_is_cheap_and_counted() {
        let mut core = warmed(CoreSimConfig::mercury_a7(), 64);
        let t = core.execute(&Request {
            op: Op::Get,
            key: b"never-stored".to_vec(),
            value_bytes: 64,
        });
        assert!(!t.hit);
        assert_eq!(core.store_stats().get_misses, 1);
    }

    #[test]
    fn multiget_amortizes_the_network_stack() {
        let mut core = warmed(CoreSimConfig::mercury_a7(), 64);
        core.preload(64, 32).unwrap();
        let keys: Vec<Vec<u8>> = (0..16).map(densekv_workload::key_bytes).collect();
        // Warm the batched path too.
        for _ in 0..30 {
            core.execute_multiget(&keys, 64);
        }
        let single = core.execute(&get_request(1)).rtt;
        let (batched, hits) = core.execute_multiget(&keys, 64);
        assert_eq!(hits, 16);
        let per_key = batched.rtt.as_secs_f64() / 16.0;
        let speedup = single.as_secs_f64() / per_key;
        assert!(
            speedup > 3.0,
            "batching 16 GETs should amortize the dominant network cost: {speedup:.2}x"
        );
        // But not 16x: per-key store work and response bytes remain.
        assert!(speedup < 16.0, "speedup {speedup:.2}x");
    }

    #[test]
    #[should_panic(expected = "at least one key")]
    fn empty_multiget_panics() {
        let mut core = CoreSim::new(CoreSimConfig::mercury_a7()).unwrap();
        core.execute_multiget(&[], 64);
    }
}
