//! Struct-of-arrays request-slot storage for the hot request loops.
//!
//! The sweep and open-loop drivers used to materialize every request as
//! a [`densekv_workload::Request`] — an owned key `Vec` per request,
//! allocated and dropped millions of times per experiment. This module
//! keeps per-request state in parallel vectors indexed by a dense slot:
//! operations, value sizes, and key bytes each live in their own
//! contiguous array (keys in a fixed-stride arena), and released slots
//! are recycled through a free list, so steady-state request churn
//! allocates nothing.
//!
//! Slot handles are generation-checked: [`RequestSlots::release`] bumps
//! the slot's generation, so a stale [`SlotId`] held across recycling
//! panics instead of silently reading another request's state — the
//! same discipline the event slab in `densekv-sim` uses for timers.

use densekv_workload::{key_bytes_into_slice, Op, MAX_KEY_LEN};

/// Handle to one live request slot; invalidated by
/// [`RequestSlots::release`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SlotId {
    index: u32,
    generation: u32,
}

/// Arena of per-request state in struct-of-arrays layout.
///
/// # Examples
///
/// ```
/// use densekv::slots::RequestSlots;
/// use densekv_workload::Op;
///
/// let mut slots = RequestSlots::new();
/// let id = slots.acquire(Op::Get, 64, 7);
/// assert_eq!(slots.key(id), densekv_workload::key_bytes(7).as_slice());
/// assert_eq!(slots.value_bytes(id), 64);
/// slots.release(id);
/// assert!(slots.is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct RequestSlots {
    ops: Vec<Op>,
    value_bytes: Vec<u64>,
    /// Rendered key length per slot; bytes live in `keys`.
    key_lens: Vec<u8>,
    /// Key arena, [`MAX_KEY_LEN`] bytes per slot.
    keys: Vec<u8>,
    generations: Vec<u32>,
    free: Vec<u32>,
}

impl RequestSlots {
    /// Creates an empty arena.
    pub fn new() -> Self {
        RequestSlots::default()
    }

    /// Creates an arena with room for `n` concurrent requests before
    /// any vector grows.
    pub fn with_capacity(n: usize) -> Self {
        RequestSlots {
            ops: Vec::with_capacity(n),
            value_bytes: Vec::with_capacity(n),
            key_lens: Vec::with_capacity(n),
            keys: Vec::with_capacity(n * MAX_KEY_LEN),
            generations: Vec::with_capacity(n),
            free: Vec::with_capacity(n),
        }
    }

    /// Live (acquired, unreleased) slots.
    pub fn len(&self) -> usize {
        self.ops.len() - self.free.len()
    }

    /// Whether no slot is live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Slots ever allocated (live + recycled capacity).
    pub fn capacity(&self) -> usize {
        self.ops.len()
    }

    /// Allocates a slot for a request on key `key_id`, rendering the
    /// workload key bytes straight into the arena (byte-identical to
    /// [`densekv_workload::key_bytes`]).
    pub fn acquire(&mut self, op: Op, value_bytes: u64, key_id: u64) -> SlotId {
        let index = self.next_index();
        let i = index as usize;
        self.ops[i] = op;
        self.value_bytes[i] = value_bytes;
        let arena = &mut self.keys[i * MAX_KEY_LEN..(i + 1) * MAX_KEY_LEN];
        self.key_lens[i] = key_bytes_into_slice(key_id, arena) as u8;
        SlotId {
            index,
            generation: self.generations[i],
        }
    }

    /// Allocates a slot for a request whose key already exists as
    /// bytes (trace replay, cluster legs).
    ///
    /// # Panics
    ///
    /// Panics if `key` exceeds [`MAX_KEY_LEN`] bytes.
    pub fn acquire_with_key(&mut self, op: Op, value_bytes: u64, key: &[u8]) -> SlotId {
        assert!(key.len() <= MAX_KEY_LEN, "key exceeds slot arena stride");
        let index = self.next_index();
        let i = index as usize;
        self.ops[i] = op;
        self.value_bytes[i] = value_bytes;
        self.keys[i * MAX_KEY_LEN..i * MAX_KEY_LEN + key.len()].copy_from_slice(key);
        self.key_lens[i] = key.len() as u8;
        SlotId {
            index,
            generation: self.generations[i],
        }
    }

    /// Pops a recycled index or grows every parallel vector by one.
    fn next_index(&mut self) -> u32 {
        if let Some(index) = self.free.pop() {
            return index;
        }
        let index = self.ops.len();
        assert!(index <= u32::MAX as usize, "slot index fits u32");
        self.ops.push(Op::Get);
        self.value_bytes.push(0);
        self.key_lens.push(0);
        self.keys.resize(self.keys.len() + MAX_KEY_LEN, 0);
        self.generations.push(0);
        index as u32
    }

    /// The slot's operation.
    pub fn op(&self, id: SlotId) -> Op {
        self.ops[self.check(id)]
    }

    /// The slot's value size in bytes.
    pub fn value_bytes(&self, id: SlotId) -> u64 {
        self.value_bytes[self.check(id)]
    }

    /// The slot's key bytes.
    pub fn key(&self, id: SlotId) -> &[u8] {
        let i = self.check(id);
        &self.keys[i * MAX_KEY_LEN..i * MAX_KEY_LEN + self.key_lens[i] as usize]
    }

    /// Returns a released slot to the free list and invalidates `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is stale (already released).
    pub fn release(&mut self, id: SlotId) {
        let i = self.check(id);
        self.generations[i] = self.generations[i].wrapping_add(1);
        self.free.push(id.index);
    }

    /// Validates a handle's generation, returning its index.
    fn check(&self, id: SlotId) -> usize {
        let i = id.index as usize;
        assert_eq!(
            self.generations[i], id.generation,
            "stale SlotId: slot {} was released and recycled",
            id.index
        );
        i
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use densekv_workload::key_bytes;

    #[test]
    fn acquire_renders_workload_key_bytes() {
        let mut slots = RequestSlots::new();
        for id in [0u64, 7, 12_345, 99_999_999_999, u64::MAX] {
            let slot = slots.acquire(Op::Put, 256, id);
            assert_eq!(slots.key(slot), key_bytes(id).as_slice(), "key id {id}");
            assert_eq!(slots.op(slot), Op::Put);
            assert_eq!(slots.value_bytes(slot), 256);
            slots.release(slot);
        }
    }

    #[test]
    fn free_list_recycles_without_growth() {
        let mut slots = RequestSlots::new();
        for i in 0..1000u64 {
            let slot = slots.acquire(Op::Get, 64, i);
            slots.release(slot);
        }
        assert_eq!(slots.capacity(), 1, "one slot recycled a thousand times");
        assert!(slots.is_empty());
    }

    #[test]
    fn parallel_lives_get_distinct_slots() {
        let mut slots = RequestSlots::with_capacity(4);
        let a = slots.acquire(Op::Get, 64, 1);
        let b = slots.acquire(Op::Put, 128, 2);
        assert_eq!(slots.len(), 2);
        assert_eq!(slots.key(a), key_bytes(1).as_slice());
        assert_eq!(slots.key(b), key_bytes(2).as_slice());
        slots.release(a);
        let c = slots.acquire_with_key(Op::Get, 64, b"key:something");
        assert_eq!(slots.capacity(), 2, "slot a's storage was recycled");
        assert_eq!(slots.key(c), b"key:something");
        slots.release(b);
        slots.release(c);
    }

    #[test]
    #[should_panic(expected = "stale SlotId")]
    fn stale_handle_panics() {
        let mut slots = RequestSlots::new();
        let a = slots.acquire(Op::Get, 64, 1);
        slots.release(a);
        let _b = slots.acquire(Op::Get, 64, 2); // recycles a's storage
        slots.key(a);
    }
}
