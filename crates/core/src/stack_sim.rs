//! Event-driven multi-core stack simulation.
//!
//! Tables 3–4 scale per-core throughput linearly (§5.3) and cap each
//! stack at its 10 GbE port analytically. This module *checks* that
//! shortcut: n cores, each a closed-loop Memcached instance, share one
//! full-duplex 10 GbE wire through the discrete-event scheduler. At small
//! request sizes the wire is idle and scaling is linear; at large sizes
//! responses serialize on the port and aggregate throughput saturates —
//! the crossover the analytic model assumes.

use densekv_net::frame::{wire_bytes_for_payload, MessageSizes};
use densekv_net::PortMeter;
use densekv_sim::stats::LatencyHistogram;
use densekv_sim::{Duration, Scheduler, SimTime};
use densekv_workload::{FixedSizeWorkload, Op, RequestGenerator};

use crate::sim::{CoreSim, CoreSimConfig};

/// Configuration of a multi-core stack run.
#[derive(Debug, Clone)]
pub struct StackSimConfig {
    /// Per-core configuration (memory device instantiated per core, as
    /// each core owns its ports, §4.1.2).
    pub per_core: CoreSimConfig,
    /// Cores on the stack (1–32).
    pub cores: u32,
    /// Value size, bytes.
    pub value_bytes: u64,
    /// Measured requests per core.
    pub requests_per_core: u32,
    /// Warmup requests per core.
    pub warmup_per_core: u32,
}

impl StackSimConfig {
    /// A GET workload on `cores` Mercury-A7 cores.
    pub fn mercury_a7(cores: u32, value_bytes: u64) -> Self {
        StackSimConfig {
            per_core: CoreSimConfig::mercury_a7(),
            cores,
            value_bytes,
            requests_per_core: 60,
            warmup_per_core: 120,
        }
    }
}

/// Result of a stack run.
#[derive(Debug, Clone)]
pub struct StackSimResult {
    /// Aggregate stack throughput, TPS.
    pub aggregate_tps: f64,
    /// Outbound wire utilization over the measured window.
    pub wire_out_utilization: f64,
    /// Queueing-inclusive RTT distribution across all cores.
    pub latency: LatencyHistogram,
    /// Cores simulated.
    pub cores: u32,
    /// Inbound (request) port meter over the whole run, warmup included.
    pub ingress: PortMeter,
    /// Outbound (response) port meter over the whole run, warmup
    /// included — unlike [`wire_out_utilization`](Self::wire_out_utilization),
    /// which covers only the measured window.
    pub egress: PortMeter,
}

/// A client's next departure.
#[derive(Debug, Clone, Copy)]
struct Departure {
    core: usize,
    seq: u32,
}

/// Runs the event-driven stack simulation.
///
/// # Panics
///
/// Panics on invalid configurations (zero cores, preload failure).
pub fn run(config: &StackSimConfig) -> StackSimResult {
    assert!(config.cores >= 1, "need at least one core");
    let population = 64;
    let mut sized = config.per_core.clone();
    sized.store_bytes = sized
        .store_bytes
        .max((config.value_bytes + 4096) * population * 2)
        .max(16 << 20);

    let mut cores: Vec<CoreSim> = (0..config.cores)
        .map(|_| {
            let mut core = CoreSim::new(sized.clone()).expect("valid configuration");
            core.preload(config.value_bytes, population).expect("fits");
            core
        })
        .collect();
    let mut generators: Vec<FixedSizeWorkload> = (0..config.cores)
        .map(|i| {
            FixedSizeWorkload::new(
                Op::Get,
                config.value_bytes,
                population,
                0xC0DE + u64::from(i),
            )
        })
        .collect();

    let wire = config.per_core.wire;
    let mac = Duration::from_nanos(500);
    let sizes = MessageSizes::get(16, config.value_bytes);
    let req_ser = wire.serialization_time(wire_bytes_for_payload(sizes.request_payload));
    let resp_ser = wire.serialization_time(wire_bytes_for_payload(sizes.response_payload));

    let mut sched: Scheduler<Departure> = Scheduler::new();
    for core in 0..config.cores as usize {
        // Stagger initial departures slightly so cold starts don't pile.
        sched.schedule_in(
            Duration::from_nanos(core as u64 * 200),
            Departure { core, seq: 0 },
        );
    }

    let mut wire_in_free = SimTime::ZERO;
    let mut wire_out_free = SimTime::ZERO;
    let mut latency = LatencyHistogram::new();
    let mut measured = 0u64;
    let mut measure_start: Option<SimTime> = None;
    let mut measure_end = SimTime::ZERO;
    let mut wire_out_busy = Duration::ZERO;
    let mut ingress = PortMeter::default();
    let mut egress = PortMeter::default();
    let req_bytes = wire_bytes_for_payload(sizes.request_payload);
    let resp_bytes = wire_bytes_for_payload(sizes.response_payload);
    let total_per_core = config.warmup_per_core + config.requests_per_core;

    while let Some((depart, event)) = sched.pop() {
        let request = generators[event.core].next_request();
        // Inbound: the shared port serializes requests one at a time.
        let in_start = depart.max(wire_in_free);
        wire_in_free = in_start + req_ser;
        ingress.record_send_bytes(req_ser, req_bytes);
        let at_server = wire_in_free + wire.propagation + mac;
        // The core is idle in a closed loop: service starts on arrival.
        let timing = cores[event.core].execute(&request);
        let done = at_server + timing.server;
        // Outbound: responses contend for the port.
        let out_start = done.max(wire_out_free);
        wire_out_free = out_start + resp_ser;
        egress.record_send_bytes(resp_ser, resp_bytes);
        let at_client = wire_out_free + wire.propagation + mac;

        let in_measurement = event.seq >= config.warmup_per_core;
        if in_measurement {
            latency.record(at_client.elapsed_since(depart));
            measured += 1;
            measure_start.get_or_insert(depart);
            measure_end = measure_end.max(at_client);
            wire_out_busy += resp_ser;
        }
        if event.seq + 1 < total_per_core {
            let next = at_client + config.per_core.client_overhead;
            sched.schedule_at(
                next.max(sched.now()),
                Departure {
                    core: event.core,
                    seq: event.seq + 1,
                },
            );
        }
    }

    let span = measure_end
        .elapsed_since(measure_start.unwrap_or(SimTime::ZERO))
        .as_secs_f64()
        .max(f64::MIN_POSITIVE);
    StackSimResult {
        aggregate_tps: measured as f64 / span,
        wire_out_utilization: (wire_out_busy.as_secs_f64() / span).min(1.0),
        latency,
        cores: config.cores,
        ingress,
        egress,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_requests_scale_linearly() {
        // §5.3's linear-scaling assumption, checked event-by-event.
        let one = run(&StackSimConfig::mercury_a7(1, 64));
        let eight = run(&StackSimConfig::mercury_a7(8, 64));
        let ratio = eight.aggregate_tps / one.aggregate_tps;
        assert!(
            (6.8..9.2).contains(&ratio),
            "8 cores should give ~8x at 64 B: {ratio:.2}"
        );
        assert!(
            eight.wire_out_utilization < 0.1,
            "64 B leaves the wire idle"
        );
        // Port meters see every frame, warmup included.
        let total = 8 * (120 + 60) as u64;
        assert_eq!(eight.ingress.sends(), total);
        assert_eq!(eight.egress.sends(), total);
        assert!(eight.egress.bytes() > eight.ingress.bytes());
    }

    #[test]
    fn large_responses_saturate_the_wire() {
        let mut one_cfg = StackSimConfig::mercury_a7(1, 256 << 10);
        one_cfg.requests_per_core = 20;
        one_cfg.warmup_per_core = 6;
        let mut many_cfg = StackSimConfig::mercury_a7(16, 256 << 10);
        many_cfg.requests_per_core = 20;
        many_cfg.warmup_per_core = 6;
        let one = run(&one_cfg);
        let many = run(&many_cfg);
        let ratio = many.aggregate_tps / one.aggregate_tps;
        assert!(
            ratio < 12.0,
            "256 KB responses must contend for the port: {ratio:.2}x"
        );
        assert!(
            many.wire_out_utilization > 0.6,
            "outbound port should be near saturation: {:.2}",
            many.wire_out_utilization
        );
    }

    #[test]
    fn queueing_on_the_wire_shows_in_latency() {
        let mut lone = StackSimConfig::mercury_a7(1, 256 << 10);
        lone.requests_per_core = 15;
        lone.warmup_per_core = 5;
        let mut crowded = StackSimConfig::mercury_a7(16, 256 << 10);
        crowded.requests_per_core = 15;
        crowded.warmup_per_core = 5;
        let p50_lone = run(&lone).latency.percentile(0.5).expect("samples");
        let p50_crowded = run(&crowded).latency.percentile(0.5).expect("samples");
        assert!(
            p50_crowded > p50_lone,
            "sharing the wire costs latency: {p50_lone} -> {p50_crowded}"
        );
    }
}
