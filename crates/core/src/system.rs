//! The top-level facade: build a Mercury or Iridium system and ask it
//! questions, without touching the individual substrate crates.
//!
//! # Examples
//!
//! ```
//! use densekv::system::SystemBuilder;
//!
//! // The paper's headline server: Mercury-32 on A7 cores.
//! let system = SystemBuilder::mercury().cores_per_stack(32).build()?;
//! let report = system.evaluate_quick(64);
//! assert!(report.tps > 10e6, "tens of millions of 64 B GETs per second");
//! # Ok::<(), densekv::system::BuildError>(())
//! ```

use densekv_cpu::CoreConfig;
use densekv_par::Jobs;
use densekv_server::{evaluate_server, plan_server, ServerConstraints, ServerPlan, ServerReport};
use densekv_sim::Duration;
use densekv_stack::config::StackConfigError;
use densekv_stack::{MemoryKind, StackConfig};

use crate::openloop::{run as run_openloop, OpenLoopConfig, OpenLoopResult};
use crate::sim::CoreSimConfig;
use crate::sweep::{measure_point, sweep_sizes, SweepEffort, SweepPoint};

/// Which memory family the system uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FamilyChoice {
    Mercury,
    Iridium,
}

/// Errors from building a system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// The stack configuration is invalid.
    Stack(StackConfigError),
}

impl core::fmt::Display for BuildError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            BuildError::Stack(e) => write!(f, "invalid stack configuration: {e}"),
        }
    }
}

impl std::error::Error for BuildError {}

impl From<StackConfigError> for BuildError {
    fn from(e: StackConfigError) -> Self {
        BuildError::Stack(e)
    }
}

/// Builder for a full 1.5U system.
///
/// Defaults follow the paper's headline configuration: A7 @ 1 GHz cores
/// with 2 MB L2s, 32 cores per stack, 10 ns DRAM / 10 µs flash, and the
/// paper's 1.5U constraints.
#[derive(Debug, Clone)]
pub struct SystemBuilder {
    family: FamilyChoice,
    core: CoreConfig,
    cores_per_stack: u32,
    l2: bool,
    memory_latency: Duration,
    constraints: ServerConstraints,
    effort: SweepEffort,
    jobs: Jobs,
}

impl SystemBuilder {
    fn new(family: FamilyChoice) -> Self {
        SystemBuilder {
            memory_latency: match family {
                FamilyChoice::Mercury => Duration::from_nanos(10),
                FamilyChoice::Iridium => Duration::from_micros(10),
            },
            family,
            core: CoreConfig::a7_1ghz(),
            cores_per_stack: 32,
            l2: true,
            constraints: ServerConstraints::paper_1p5u(),
            effort: SweepEffort::quick(),
            jobs: Jobs::from_env(),
        }
    }

    /// Starts a DRAM-based (Mercury) system.
    pub fn mercury() -> Self {
        SystemBuilder::new(FamilyChoice::Mercury)
    }

    /// Starts a flash-based (Iridium) system.
    pub fn iridium() -> Self {
        SystemBuilder::new(FamilyChoice::Iridium)
    }

    /// Sets the core model (A7/A15, frequency).
    pub fn core(mut self, core: CoreConfig) -> Self {
        self.core = core;
        self
    }

    /// Sets cores per stack (1–32).
    pub fn cores_per_stack(mut self, n: u32) -> Self {
        self.cores_per_stack = n;
        self
    }

    /// Enables or disables the per-core 2 MB L2.
    pub fn l2(mut self, l2: bool) -> Self {
        self.l2 = l2;
        self
    }

    /// Sets the memory latency (DRAM closed-page / flash read).
    pub fn memory_latency(mut self, latency: Duration) -> Self {
        self.memory_latency = latency;
        self
    }

    /// Overrides the 1.5U packing constraints.
    pub fn constraints(mut self, constraints: ServerConstraints) -> Self {
        self.constraints = constraints;
        self
    }

    /// Sets the measurement effort used by evaluations.
    pub fn effort(mut self, effort: SweepEffort) -> Self {
        self.effort = effort;
        self
    }

    /// Sets the worker count for swept evaluations (results are
    /// bit-identical at any value; defaults to [`Jobs::from_env`]).
    pub fn jobs(mut self, jobs: Jobs) -> Self {
        self.jobs = jobs;
        self
    }

    /// Validates the configuration and produces a [`System`].
    ///
    /// # Errors
    ///
    /// [`BuildError::Stack`] for invalid core counts.
    pub fn build(self) -> Result<System, BuildError> {
        let memory = match self.family {
            FamilyChoice::Mercury => {
                MemoryKind::Mercury(densekv_mem::dram::DramConfig::mercury(self.memory_latency))
            }
            FamilyChoice::Iridium => MemoryKind::Iridium(densekv_mem::flash::FlashConfig::iridium(
                self.memory_latency,
            )),
        };
        let stack = StackConfig::new(memory, self.core.clone(), self.cores_per_stack, self.l2)?;
        let sim_config = match self.family {
            FamilyChoice::Mercury => {
                CoreSimConfig::mercury(self.core, self.l2, self.memory_latency)
            }
            FamilyChoice::Iridium => {
                CoreSimConfig::iridium(self.core, self.l2, self.memory_latency)
            }
        };
        Ok(System {
            stack,
            sim_config,
            constraints: self.constraints,
            effort: self.effort,
            jobs: self.jobs,
        })
    }
}

/// A buildable, queryable 1.5U system.
#[derive(Debug, Clone)]
pub struct System {
    stack: StackConfig,
    sim_config: CoreSimConfig,
    constraints: ServerConstraints,
    effort: SweepEffort,
    jobs: Jobs,
}

impl System {
    /// The stack configuration (`Mercury-32` etc.).
    pub fn stack(&self) -> &StackConfig {
        &self.stack
    }

    /// The per-core simulator configuration.
    pub fn core_config(&self) -> &CoreSimConfig {
        &self.sim_config
    }

    /// Plans the box and evaluates it at one GET size, planning the stack
    /// count from that size's bandwidth alone (fast; slightly optimistic
    /// on stack count versus [`System::evaluate_swept`]).
    pub fn evaluate_quick(&self, value_bytes: u64) -> ServerReport {
        let point = measure_point(&self.sim_config, value_bytes, self.effort);
        let peak = self.stack.cores as f64 * point.get.perf.mem_gbps;
        let plan = self.plan(peak);
        evaluate_server(&plan, point.get.perf)
    }

    /// Full evaluation: sweeps every paper size, plans the box at peak
    /// bandwidth, and returns the 64 B working point plus the sweep.
    pub fn evaluate_swept(&self) -> (ServerReport, Vec<SweepPoint>) {
        let sweep = sweep_sizes(&self.sim_config, self.effort, self.jobs);
        let peak = sweep
            .iter()
            .map(|p| crate::experiments::evaluation::stack_mem_gbps(self.stack.cores, p.get.perf))
            .fold(0.0f64, f64::max);
        let plan = self.plan(peak);
        let at_64b = sweep
            .iter()
            .find(|p| p.value_bytes == 64)
            .expect("sweep includes 64 B");
        (evaluate_server(&plan, at_64b.get.perf), sweep)
    }

    /// Latency under a Poisson load of `rate_per_sec` GETs of
    /// `value_bytes`, on one core.
    pub fn latency_under_load(&self, value_bytes: u64, rate_per_sec: f64) -> OpenLoopResult {
        run_openloop(&OpenLoopConfig::gets(
            self.sim_config.clone(),
            value_bytes,
            rate_per_sec,
        ))
    }

    fn plan(&self, peak_mem_gbps: f64) -> ServerPlan {
        plan_server(&self.constraints, self.stack.clone(), peak_mem_gbps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_the_headline_servers() {
        let mercury = SystemBuilder::mercury().build().unwrap();
        assert_eq!(mercury.stack().name(), "Mercury-32");
        let iridium = SystemBuilder::iridium().build().unwrap();
        assert_eq!(iridium.stack().name(), "Iridium-32");
        assert!(iridium.stack().l2);
    }

    #[test]
    fn builder_knobs_apply() {
        let system = SystemBuilder::mercury()
            .core(CoreConfig::a15_1ghz())
            .cores_per_stack(8)
            .l2(false)
            .memory_latency(Duration::from_nanos(50))
            .build()
            .unwrap();
        assert_eq!(system.stack().name(), "Mercury-8");
        assert!(!system.stack().l2);
        assert_eq!(system.core_config().core.label(), "A15 @1GHz");
    }

    #[test]
    fn invalid_core_count_is_a_build_error() {
        let err = SystemBuilder::mercury().cores_per_stack(64).build();
        assert!(matches!(err, Err(BuildError::Stack(_))));
        assert!(err.unwrap_err().to_string().contains("invalid stack"));
    }

    #[test]
    fn quick_evaluation_lands_in_table4_band() {
        let report = SystemBuilder::mercury().build().unwrap().evaluate_quick(64);
        assert!((24e6..42e6).contains(&report.tps), "{}", report.tps);
        assert_eq!(report.memory_gb, report.stacks as f64 * 4.0);
    }

    #[test]
    fn facade_latency_under_load() {
        let system = SystemBuilder::iridium().build().unwrap();
        let result = system.latency_under_load(64, 1_000.0);
        assert!(result.sla_1ms > 0.9, "{}", result.sla_1ms);
    }
}
