//! The paper's published numbers, for side-by-side comparison in
//! EXPERIMENTS.md and the calibration tests.

/// A Table 4 row as published.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table4Row {
    /// Configuration label.
    pub name: &'static str,
    /// Stacks in the 1.5U box.
    pub stacks: u32,
    /// Total cores.
    pub cores: u32,
    /// Memory, GB.
    pub memory_gb: f64,
    /// Power, watts.
    pub power_w: f64,
    /// Millions of TPS at 64 B.
    pub mtps: f64,
    /// Thousand TPS per watt.
    pub ktps_per_watt: f64,
    /// Thousand TPS per GB.
    pub ktps_per_gb: f64,
    /// Bandwidth, GB/s.
    pub bandwidth_gbps: f64,
}

/// Table 4, Mercury columns (A7 cores).
pub const TABLE4_MERCURY: [Table4Row; 3] = [
    Table4Row {
        name: "Mercury-8",
        stacks: 96,
        cores: 768,
        memory_gb: 384.0,
        power_w: 309.0,
        mtps: 8.44,
        ktps_per_watt: 27.33,
        ktps_per_gb: 21.98,
        bandwidth_gbps: 0.54,
    },
    Table4Row {
        name: "Mercury-16",
        stacks: 96,
        cores: 1536,
        memory_gb: 384.0,
        power_w: 410.0,
        mtps: 16.88,
        ktps_per_watt: 41.21,
        ktps_per_gb: 43.96,
        bandwidth_gbps: 1.08,
    },
    Table4Row {
        name: "Mercury-32",
        stacks: 93,
        cores: 2976,
        memory_gb: 372.0,
        power_w: 597.0,
        mtps: 32.70,
        ktps_per_watt: 54.77,
        ktps_per_gb: 87.91,
        bandwidth_gbps: 2.09,
    },
];

/// Table 4, Iridium columns (A7 cores).
pub const TABLE4_IRIDIUM: [Table4Row; 3] = [
    Table4Row {
        name: "Iridium-8",
        stacks: 96,
        cores: 768,
        memory_gb: 1901.0,
        power_w: 309.0,
        mtps: 4.12,
        ktps_per_watt: 13.35,
        ktps_per_gb: 2.17,
        bandwidth_gbps: 0.26,
    },
    Table4Row {
        name: "Iridium-16",
        stacks: 96,
        cores: 1536,
        memory_gb: 1901.0,
        power_w: 410.0,
        mtps: 8.24,
        ktps_per_watt: 20.13,
        ktps_per_gb: 4.34,
        bandwidth_gbps: 0.53,
    },
    Table4Row {
        name: "Iridium-32",
        stacks: 96,
        cores: 3072,
        memory_gb: 1901.0,
        power_w: 611.0,
        mtps: 16.49,
        ktps_per_watt: 26.98,
        ktps_per_gb: 8.67,
        bandwidth_gbps: 1.06,
    },
];

/// The §6 headline multipliers versus the Bags baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Headline {
    /// Density improvement.
    pub density: f64,
    /// Power-efficiency (TPS/W) improvement.
    pub efficiency: f64,
    /// Throughput improvement.
    pub throughput: f64,
    /// TPS/GB change (>1 = better, <1 = the Iridium trade-off).
    pub tps_per_gb: f64,
}

/// Mercury's published headline: 2.9× density, 4.9× TPS/W, 10× TPS,
/// 3.5× TPS/GB.
pub const MERCURY_HEADLINE: Headline = Headline {
    density: 2.9,
    efficiency: 4.9,
    throughput: 10.0,
    tps_per_gb: 3.5,
};

/// Iridium's published headline: 14× density (the abstract's 14× /
/// conclusion's 14.8×), 2.4× TPS/W, 5.2× TPS, 2.8× *less* TPS/GB.
pub const IRIDIUM_HEADLINE: Headline = Headline {
    density: 14.8,
    efficiency: 2.4,
    throughput: 5.2,
    tps_per_gb: 1.0 / 2.8,
};

/// Fig. 4a's approximate component shares for small GETs (≤ 4 KB).
pub const FIG4_GET_NETWORK_SHARE: f64 = 0.87;
/// Fig. 4a store ("Memcached") share for small GETs.
pub const FIG4_GET_STORE_SHARE: f64 = 0.10;
/// Fig. 4a hash share for small GETs.
pub const FIG4_GET_HASH_SHARE: f64 = 0.025;

/// Per-core 64 B GET throughput implied by Table 4 (8.44 M / 768).
pub const A7_MERCURY_KTPS_PER_CORE: f64 = 11.0;
/// Per-core 64 B GET throughput implied by Table 4 (16.49 M / 3072).
pub const A7_IRIDIUM_KTPS_PER_CORE: f64 = 5.37;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_internal_consistency() {
        for row in TABLE4_MERCURY.iter().chain(TABLE4_IRIDIUM.iter()) {
            // KTPS/W and KTPS/GB columns follow from TPS, power, memory.
            let ktps_w = row.mtps * 1000.0 / row.power_w;
            assert!(
                (ktps_w - row.ktps_per_watt).abs() / row.ktps_per_watt < 0.02,
                "{}: {ktps_w} vs {}",
                row.name,
                row.ktps_per_watt
            );
            let ktps_gb = row.mtps * 1000.0 / row.memory_gb;
            assert!(
                (ktps_gb - row.ktps_per_gb).abs() / row.ktps_per_gb < 0.02,
                "{}: {ktps_gb} vs {}",
                row.name,
                row.ktps_per_gb
            );
            // Bandwidth = TPS x 64 B.
            let bw = row.mtps * 1e6 * 64.0 / 1e9;
            assert!(
                (bw - row.bandwidth_gbps).abs() < 0.03,
                "{}: {bw} vs {}",
                row.name,
                row.bandwidth_gbps
            );
        }
    }

    #[test]
    fn headlines_follow_from_table4_and_bags() {
        let bags = densekv_baseline::BAGS;
        let mercury = TABLE4_MERCURY[2];
        assert!((mercury.mtps / bags.mtps - MERCURY_HEADLINE.throughput).abs() < 0.5);
        assert!(
            (mercury.ktps_per_watt / bags.ktps_per_watt() - MERCURY_HEADLINE.efficiency).abs()
                < 0.2
        );
        assert!((mercury.memory_gb / bags.memory_gb - MERCURY_HEADLINE.density).abs() < 0.1);
        let iridium = TABLE4_IRIDIUM[2];
        assert!((iridium.mtps / bags.mtps - IRIDIUM_HEADLINE.throughput).abs() < 0.1);
        assert!((iridium.memory_gb / bags.memory_gb - IRIDIUM_HEADLINE.density).abs() < 0.1);
    }

    #[test]
    fn per_core_rates_match_table4() {
        let m = &TABLE4_MERCURY[2];
        assert!((m.mtps * 1e3 / m.cores as f64 - A7_MERCURY_KTPS_PER_CORE).abs() < 0.1);
        let i = &TABLE4_IRIDIUM[2];
        assert!((i.mtps * 1e3 / i.cores as f64 - A7_IRIDIUM_KTPS_PER_CORE).abs() < 0.1);
    }
}
