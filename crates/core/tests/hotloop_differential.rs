//! Differential pins for the hot-loop rewrite's two speed paths.
//!
//! The resident-L2 shortcut must be invisible at the request level for
//! *mixed* GET/PUT streams on every stack family; the phase memo is
//! only exact for single-shape loops, which is why it ships disabled —
//! both claims are checked against a reference core with the path
//! turned off.

use densekv::sim::{CoreSim, CoreSimConfig};
use densekv::slots::RequestSlots;
use densekv_workload::{FixedSizeWorkload, Op};

fn build(config: &CoreSimConfig, value_bytes: u64, population: u64, reference: bool) -> CoreSim {
    let mut sized = config.clone();
    sized.store_bytes = sized
        .store_bytes
        .max((value_bytes + 4096) * population * 2)
        .max(16 << 20);
    let mut core = CoreSim::new(sized).expect("valid configuration");
    if reference {
        core.disable_l2_residency_shortcut();
    }
    core.preload(value_bytes, population).expect("preload fits");
    core
}

/// Runs the same seeded mixed op stream through `fast` and `reference`,
/// asserting identical timings, breakdowns, and cache counters at every
/// request.
fn assert_streams_identical(fast: &mut CoreSim, reference: &mut CoreSim, value_bytes: u64) {
    let population = 64;
    let mut slots = RequestSlots::with_capacity(1);
    for op in [Op::Get, Op::Put, Op::Get] {
        let mut gen_f = FixedSizeWorkload::new(op, value_bytes, population, 0xD1FF ^ value_bytes);
        let mut gen_r = FixedSizeWorkload::new(op, value_bytes, population, 0xD1FF ^ value_bytes);
        for i in 0..110u32 {
            let a = slots.acquire(op, value_bytes, gen_f.next_key_id());
            let (tf, bf) = fast.execute_parts(slots.op(a), slots.key(a), slots.value_bytes(a));
            slots.release(a);
            let b = slots.acquire(op, value_bytes, gen_r.next_key_id());
            let (tr, br) = reference.execute_parts(slots.op(b), slots.key(b), slots.value_bytes(b));
            slots.release(b);
            assert_eq!(tf, tr, "timing diverged at {op:?} #{i} ({value_bytes} B)");
            assert_eq!(bf, br, "breakdown diverged at {op:?} #{i}");
            assert_eq!(
                fast.cache_stats(),
                reference.cache_stats(),
                "cache counters diverged at {op:?} #{i}"
            );
        }
    }
}

#[test]
fn residency_shortcut_is_invisible_on_mercury() {
    for value_bytes in [64, 128, 8192] {
        let config = CoreSimConfig::mercury_a7();
        let mut fast = build(&config, value_bytes, 64, false);
        let mut reference = build(&config, value_bytes, 64, true);
        assert_streams_identical(&mut fast, &mut reference, value_bytes);
    }
}

#[test]
fn residency_shortcut_is_invisible_on_iridium() {
    let config = CoreSimConfig::iridium_a7();
    let mut fast = build(&config, 128, 64, false);
    let mut reference = build(&config, 128, 64, true);
    assert_streams_identical(&mut fast, &mut reference, 128);
}

/// The memo's documented soundness domain: a loop that replays one
/// request shape end-to-end. With every request armed-and-replaying,
/// the frozen cache contents are never consulted by a diverging real
/// execution, so opt-in memo must be bit-exact — and actually hit.
#[test]
fn memo_is_exact_for_single_shape_loops() {
    let config = CoreSimConfig::mercury_a7();
    let mut memoized = build(&config, 64, 64, false);
    memoized.set_memo_enabled(true);
    let mut reference = build(&config, 64, 64, false);
    assert!(!reference.memo_enabled(), "memo ships disabled");

    let mut slots = RequestSlots::with_capacity(1);
    // One fixed key: a single (family, size) shape.
    for i in 0..400u32 {
        let a = slots.acquire(Op::Get, 64, 7);
        let (tm, bm) = memoized.execute_parts(slots.op(a), slots.key(a), slots.value_bytes(a));
        let (tr, br) = reference.execute_parts(slots.op(a), slots.key(a), slots.value_bytes(a));
        slots.release(a);
        assert_eq!(tm, tr, "memo replay diverged at #{i}");
        assert_eq!(bm, br, "memo breakdown diverged at #{i}");
    }
    assert!(
        memoized.memo_hits() > 100,
        "the loop must actually replay (hits = {})",
        memoized.memo_hits()
    );
    assert_eq!(reference.memo_hits(), 0);
}
