//! The 1.5U server model: packing constraints, the stack-count solver,
//! and whole-server performance aggregation (§5.4–§5.6 of the paper).
//!
//! A 1.5U box imposes three independent caps on how many stacks it holds:
//!
//! * **power** — a 750 W supply, 160 W reserved for disk/motherboard, and
//!   a 20 % delivery margin leave (750 − 160) × 0.8 = 472 W for stacks,
//! * **area** — 77 % of a 13" × 13" motherboard for stacks and their
//!   dual-PHY chips (≈128 stacks),
//! * **ports** — at most 96 Ethernet ports fit the back panel, so 96
//!   stacks is the hard cap.
//!
//! [`fit`] solves for the stack count; [`model`] aggregates per-core
//! simulation results into the whole-server numbers Tables 3 and 4
//! report; [`fleet`] sizes whole deployments (servers, racks, kW) against
//! a dataset + rate demand — the paper's motivating arithmetic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod constraints;
pub mod fit;
pub mod fleet;
pub mod model;

pub use constraints::ServerConstraints;
pub use fit::{plan_server, LimitingFactor, ServerPlan};
pub use fleet::{plan_fleet, Demand, FleetPlan};
pub use model::{
    evaluate_server, stack_working_point, PerCorePerf, ServerReport, StackWorkingPoint,
};
