//! The stack-count solver: how many stacks of a given configuration fit
//! the 1.5U box, and what limits them.

use densekv_stack::power::stack_power;
use densekv_stack::StackConfig;

use crate::constraints::ServerConstraints;

/// Which constraint bound the stack count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LimitingFactor {
    /// The 472 W component power budget.
    Power,
    /// Board area for stacks + PHYs.
    Area,
    /// The 96-port back panel.
    Ports,
}

impl core::fmt::Display for LimitingFactor {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            LimitingFactor::Power => write!(f, "power"),
            LimitingFactor::Area => write!(f, "area"),
            LimitingFactor::Ports => write!(f, "ports"),
        }
    }
}

/// A solved server plan.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerPlan {
    /// The stack configuration being packed.
    pub stack: StackConfig,
    /// Stacks installed.
    pub stacks: u32,
    /// The binding constraint.
    pub limited_by: LimitingFactor,
    /// Per-stack component power at the planning (peak-bandwidth) point.
    pub peak_stack_w: f64,
    /// The constraints used.
    pub constraints: ServerConstraints,
}

impl ServerPlan {
    /// Total cores in the server.
    pub fn total_cores(&self) -> u32 {
        self.stacks * self.stack.cores
    }

    /// Total memory in the paper's density units (GB).
    pub fn density_gb(&self) -> f64 {
        self.stacks as f64 * self.stack.memory.nominal_capacity_gb()
    }
}

/// Solves for the maximum stack count given the per-stack power at peak
/// bandwidth `peak_mem_gbps` (Table 3 sizes the box at the *maximum*
/// bandwidth the cores can generate, §5.4.1).
///
/// # Examples
///
/// ```
/// use densekv_cpu::CoreConfig;
/// use densekv_server::fit::{plan_server, LimitingFactor};
/// use densekv_server::ServerConstraints;
/// use densekv_stack::StackConfig;
///
/// let stack = StackConfig::mercury(CoreConfig::a7_1ghz(), 8, true)?;
/// let plan = plan_server(&ServerConstraints::paper_1p5u(), stack, 1.6);
/// assert_eq!(plan.stacks, 96); // low-power A7 stacks hit the port cap
/// assert_eq!(plan.limited_by, LimitingFactor::Ports);
/// # Ok::<(), densekv_stack::config::StackConfigError>(())
/// ```
pub fn plan_server(
    constraints: &ServerConstraints,
    stack: StackConfig,
    peak_mem_gbps: f64,
) -> ServerPlan {
    let peak_stack_w = stack_power(&stack, peak_mem_gbps).total_w();
    let by_power = (constraints.component_budget_w() / peak_stack_w).floor() as u32;
    let by_area = constraints.max_stacks_by_area();
    let by_ports = constraints.max_ports;

    let stacks = by_power.min(by_area).min(by_ports).max(1);
    let limited_by = if stacks == by_ports && by_ports <= by_power && by_ports <= by_area {
        LimitingFactor::Ports
    } else if stacks == by_power && by_power <= by_area {
        LimitingFactor::Power
    } else {
        LimitingFactor::Area
    };
    ServerPlan {
        stack,
        stacks,
        limited_by,
        peak_stack_w,
        constraints: *constraints,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use densekv_cpu::CoreConfig;

    fn constraints() -> ServerConstraints {
        ServerConstraints::paper_1p5u()
    }

    #[test]
    fn a7_configs_reach_the_port_cap() {
        // Table 3, A7 column: area 635 cm² (96 stacks) for n = 1..16.
        for n in [1, 2, 4, 8, 16] {
            let stack = StackConfig::mercury(CoreConfig::a7_1ghz(), n, true).unwrap();
            let plan = plan_server(&constraints(), stack, 3.0);
            assert_eq!(plan.stacks, 96, "A7 Mercury-{n}");
            assert_eq!(plan.limited_by, LimitingFactor::Ports);
        }
    }

    #[test]
    fn a7_mercury32_is_power_limited_near_96() {
        // Table 3: A7 Mercury-32 drops slightly below 96 stacks (93).
        let stack = StackConfig::mercury(CoreConfig::a7_1ghz(), 32, true).unwrap();
        let plan = plan_server(&constraints(), stack, 6.25);
        assert_eq!(plan.limited_by, LimitingFactor::Power);
        assert!(
            (88..96).contains(&plan.stacks),
            "paper packs 93, we pack {}",
            plan.stacks
        );
    }

    #[test]
    fn a15_high_counts_are_power_limited() {
        // Table 3: A15@1.5GHz Mercury-32 reaches only ~13 stacks (52 GB).
        let stack = StackConfig::mercury(CoreConfig::a15_1p5ghz(), 32, true).unwrap();
        let plan = plan_server(&constraints(), stack, 1.3);
        assert_eq!(plan.limited_by, LimitingFactor::Power);
        assert!(
            (10..=20).contains(&plan.stacks),
            "paper packs 13, we pack {}",
            plan.stacks
        );
    }

    #[test]
    fn a15_1ghz_mercury8_matches_table3_band() {
        // Table 3: A15@1GHz Mercury-8 packs 75 stacks (300 GB).
        let stack = StackConfig::mercury(CoreConfig::a15_1ghz(), 8, true).unwrap();
        let plan = plan_server(&constraints(), stack, 2.25);
        assert_eq!(plan.limited_by, LimitingFactor::Power);
        assert!(
            (68..=88).contains(&plan.stacks),
            "paper packs 75, we pack {}",
            plan.stacks
        );
    }

    #[test]
    fn iridium_a7_32_fills_the_ports() {
        // Table 4: Iridium-32 uses all 96 stacks (1.9 TB).
        let stack = StackConfig::iridium(CoreConfig::a7_1ghz(), 32).unwrap();
        let plan = plan_server(&constraints(), stack, 0.5);
        assert_eq!(plan.stacks, 96);
        assert!(
            (plan.density_gb() - 1901.0).abs() < 25.0,
            "{}",
            plan.density_gb()
        );
    }

    #[test]
    fn density_and_cores_math() {
        let stack = StackConfig::mercury(CoreConfig::a7_1ghz(), 8, true).unwrap();
        let plan = plan_server(&constraints(), stack, 1.0);
        assert_eq!(plan.total_cores(), 768);
        // Table 3/4: 96 stacks x 4 GB = 384 GB.
        assert_eq!(plan.density_gb(), 384.0);
    }

    #[test]
    fn at_least_one_stack_even_when_over_budget() {
        let stack = StackConfig::mercury(CoreConfig::a15_1p5ghz(), 32, true).unwrap();
        let tight = ServerConstraints {
            supply_w: 200.0,
            ..constraints()
        };
        let plan = plan_server(&tight, stack, 10.0);
        assert_eq!(plan.stacks, 1);
    }
}
