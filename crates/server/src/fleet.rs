//! Fleet planning: the paper's motivating arithmetic (§1–2) — how many
//! boxes, racks, and kilowatts a cache tier costs — applied to an
//! evaluated server.

use crate::model::ServerReport;

/// What a deployment must serve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Demand {
    /// Dataset to hold in cache, GB.
    pub dataset_gb: f64,
    /// Aggregate request rate, TPS.
    pub rate_tps: f64,
}

impl Demand {
    /// Facebook's published 2008 Memcached footprint (§2.3: 28 TB over
    /// 800+ servers) at a round 20 MTPS.
    pub fn facebook_2008() -> Self {
        Demand {
            dataset_gb: 28_000.0,
            rate_tps: 20e6,
        }
    }
}

/// A sized fleet of identical servers.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetPlan {
    /// Servers deployed.
    pub servers: u32,
    /// True when capacity (not rate) set the count — the regime where
    /// the paper's density argument bites.
    pub capacity_bound: bool,
    /// Rack units consumed (1.5U per server).
    pub rack_units: f64,
    /// 42U racks consumed.
    pub racks: f64,
    /// Total power draw, kW.
    pub total_kw: f64,
}

/// Sizes a fleet of `server` boxes to meet `demand`.
///
/// # Panics
///
/// Panics if the server report has zero memory or throughput.
///
/// # Examples
///
/// ```
/// use densekv_server::fleet::{plan_fleet, Demand};
/// use densekv_server::{evaluate_server, plan_server, PerCorePerf, ServerConstraints};
/// use densekv_stack::StackConfig;
///
/// let stack = StackConfig::iridium(densekv_cpu::CoreConfig::a7_1ghz(), 32)?;
/// let plan = plan_server(&ServerConstraints::paper_1p5u(), stack, 0.5);
/// let report = evaluate_server(&plan, PerCorePerf {
///     tps: 5_700.0, mem_gbps: 0.001, wire_gbps: 0.0007,
/// });
/// let fleet = plan_fleet(&report, &Demand::facebook_2008());
/// assert!(fleet.capacity_bound, "28 TB on 1.9 TB boxes is capacity-bound");
/// assert_eq!(fleet.servers, 15);
/// # Ok::<(), densekv_stack::config::StackConfigError>(())
/// ```
pub fn plan_fleet(server: &ServerReport, demand: &Demand) -> FleetPlan {
    assert!(
        server.memory_gb > 0.0 && server.tps > 0.0,
        "server must have capacity and throughput"
    );
    let for_capacity = (demand.dataset_gb / server.memory_gb).ceil();
    let for_rate = (demand.rate_tps / server.tps).ceil();
    let servers = for_capacity.max(for_rate).max(1.0);
    FleetPlan {
        servers: servers as u32,
        capacity_bound: for_capacity >= for_rate,
        rack_units: servers * 1.5,
        racks: servers * 1.5 / 42.0,
        total_kw: servers * server.power_w / 1000.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraints::ServerConstraints;
    use crate::fit::plan_server;
    use crate::model::{evaluate_server, PerCorePerf};
    use densekv_cpu::CoreConfig;
    use densekv_stack::StackConfig;

    fn mercury_report() -> ServerReport {
        let stack = StackConfig::mercury(CoreConfig::a7_1ghz(), 32, true).unwrap();
        let plan = plan_server(&ServerConstraints::paper_1p5u(), stack, 6.25);
        evaluate_server(
            &plan,
            PerCorePerf {
                tps: 11_000.0,
                mem_gbps: 0.004,
                wire_gbps: 0.0007,
            },
        )
    }

    #[test]
    fn capacity_vs_rate_bound() {
        let report = mercury_report();
        // Huge dataset, tiny rate: capacity-bound.
        let cap = plan_fleet(
            &report,
            &Demand {
                dataset_gb: 100_000.0,
                rate_tps: 1e6,
            },
        );
        assert!(cap.capacity_bound);
        // Tiny dataset, huge rate: rate-bound.
        let rate = plan_fleet(
            &report,
            &Demand {
                dataset_gb: 100.0,
                rate_tps: 500e6,
            },
        );
        assert!(!rate.capacity_bound);
        assert!(rate.servers > cap.servers / 100);
    }

    #[test]
    fn fleet_arithmetic() {
        let report = mercury_report();
        let fleet = plan_fleet(
            &report,
            &Demand {
                dataset_gb: report.memory_gb * 10.0,
                rate_tps: 1.0,
            },
        );
        assert_eq!(fleet.servers, 10);
        assert!((fleet.rack_units - 15.0).abs() < 1e-9);
        assert!((fleet.racks - 15.0 / 42.0).abs() < 1e-9);
        assert!((fleet.total_kw - 10.0 * report.power_w / 1000.0).abs() < 1e-9);
    }

    #[test]
    fn at_least_one_server() {
        let report = mercury_report();
        let fleet = plan_fleet(
            &report,
            &Demand {
                dataset_gb: 0.001,
                rate_tps: 1.0,
            },
        );
        assert_eq!(fleet.servers, 1);
    }
}
