//! Whole-server aggregation: turns per-core simulation results into the
//! rows of Tables 3 and 4.
//!
//! Scaling is linear in cores (§5.3: each core runs an independent
//! Memcached instance), capped per stack by the 10 GbE wire. Power is the
//! wall power at the evaluated working point (which is why Table 4's 64 B
//! numbers sit below Table 3's peak-bandwidth numbers).

use densekv_stack::power::stack_power;

use crate::fit::ServerPlan;

/// What one simulated core achieves at a particular working point
/// (request size and operation mix).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PerCorePerf {
    /// Transactions per second.
    pub tps: f64,
    /// Memory-device bandwidth this core consumes, GB/s.
    pub mem_gbps: f64,
    /// Request/response payload bandwidth on the wire, GB/s.
    pub wire_gbps: f64,
}

/// One stack's wire-derated working point: the quantity every power and
/// bandwidth citation in Tables 3/4, Figures 7/8, and the efficiency
/// sweep must agree on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StackWorkingPoint {
    /// Stack throughput after the wire cap, TPS.
    pub tps: f64,
    /// Stack memory-device bandwidth after the wire cap, GB/s — the
    /// argument `stack_power` wants.
    pub mem_gbps: f64,
    /// Stack wire payload after the cap, GB/s.
    pub wire_gbps: f64,
    /// The applied derate factor (`1.0` when the wire is unsaturated).
    pub derate: f64,
}

/// Scales per-core performance to a whole stack, derated so the stack's
/// aggregate wire traffic never exceeds its one 10 GbE port's payload
/// rate. Every caller that needs a bandwidth working point — server
/// evaluation, the Table 3 peak-bandwidth scan, the efficiency sweep —
/// goes through here, so the analytic and measured power paths cannot
/// re-derive the derate differently and drift.
pub fn stack_working_point(cores: u32, perf: PerCorePerf) -> StackWorkingPoint {
    let cores = cores as f64;
    let wire_cap_gbps = densekv_net::Wire::ten_gbe().payload_bandwidth_bps() / 1e9;
    let raw_wire = cores * perf.wire_gbps;
    let derate = if raw_wire > wire_cap_gbps {
        wire_cap_gbps / raw_wire
    } else {
        1.0
    };
    StackWorkingPoint {
        tps: cores * perf.tps * derate,
        mem_gbps: cores * perf.mem_gbps * derate,
        wire_gbps: raw_wire * derate,
        derate,
    }
}

/// A full server working point: the row shape of Tables 3 and 4.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerReport {
    /// Configuration name (`Mercury-8` etc.).
    pub name: String,
    /// Stacks installed.
    pub stacks: u32,
    /// Total cores.
    pub cores: u32,
    /// Memory, paper GB.
    pub memory_gb: f64,
    /// Wall power at this working point, watts.
    pub power_w: f64,
    /// Transactions per second, whole server.
    pub tps: f64,
    /// Efficiency, thousand TPS per watt.
    pub ktps_per_watt: f64,
    /// Accessibility, thousand TPS per GB.
    pub ktps_per_gb: f64,
    /// Wire payload bandwidth, GB/s.
    pub wire_gbps: f64,
    /// Memory-device bandwidth, GB/s (Table 3's "Max BW" when evaluated at
    /// the bandwidth-maximizing size).
    pub mem_gbps: f64,
    /// Board area occupied (stacks + PHY packages), cm².
    pub area_cm2: f64,
}

/// Evaluates a planned server at one working point.
///
/// Per-stack throughput is `cores × per-core TPS`, derated if the stack's
/// aggregate wire traffic would exceed the 10 GbE payload rate.
///
/// # Examples
///
/// ```
/// use densekv_cpu::CoreConfig;
/// use densekv_server::{evaluate_server, plan_server, PerCorePerf, ServerConstraints};
/// use densekv_stack::StackConfig;
///
/// let stack = StackConfig::mercury(CoreConfig::a7_1ghz(), 32, true)?;
/// let plan = plan_server(&ServerConstraints::paper_1p5u(), stack, 6.25);
/// let perf = PerCorePerf { tps: 11_000.0, mem_gbps: 0.004, wire_gbps: 0.0007 };
/// let report = evaluate_server(&plan, perf);
/// // ~93 stacks x 32 cores x 11 KTPS ≈ 32.7 MTPS (Table 4's headline).
/// assert!(report.tps > 25e6);
/// # Ok::<(), densekv_stack::config::StackConfigError>(())
/// ```
pub fn evaluate_server(plan: &ServerPlan, perf: PerCorePerf) -> ServerReport {
    let point = stack_working_point(plan.stack.cores, perf);

    let stacks = plan.stacks as f64;
    let component_w = stacks * stack_power(&plan.stack, point.mem_gbps).total_w();
    let power_w = plan.constraints.wall_power_w(component_w);
    let tps = stacks * point.tps;
    let memory_gb = plan.density_gb();

    let area_mm2 = stacks
        * (densekv_stack::area::PACKAGE_AREA_MM2 + densekv_net::phy::DUAL_PHY_PACKAGE_MM2 / 2.0);

    ServerReport {
        name: plan.stack.name(),
        stacks: plan.stacks,
        cores: plan.total_cores(),
        memory_gb,
        power_w,
        tps,
        ktps_per_watt: tps / 1000.0 / power_w,
        ktps_per_gb: tps / 1000.0 / memory_gb,
        wire_gbps: stacks * point.wire_gbps,
        mem_gbps: stacks * point.mem_gbps,
        area_cm2: area_mm2 / 100.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraints::ServerConstraints;
    use crate::fit::plan_server;
    use densekv_cpu::CoreConfig;
    use densekv_stack::StackConfig;

    fn a7_mercury(n: u32) -> ServerPlan {
        let stack = StackConfig::mercury(CoreConfig::a7_1ghz(), n, true).unwrap();
        plan_server(&ServerConstraints::paper_1p5u(), stack, 2.0)
    }

    #[test]
    fn linear_scaling_when_wire_unsaturated() {
        let perf = PerCorePerf {
            tps: 11_000.0,
            mem_gbps: 0.004,
            wire_gbps: 0.0007,
        };
        let r8 = evaluate_server(&a7_mercury(8), perf);
        let r16 = evaluate_server(&a7_mercury(16), perf);
        assert!(
            (r16.tps / r8.tps - 2.0).abs() < 0.01,
            "TPS doubles with cores"
        );
        // Table 4: Mercury-8 at 11 KTPS/core = 8.45 MTPS.
        assert!((r8.tps - 8.448e6).abs() < 1e4);
    }

    #[test]
    fn wire_cap_derates_large_transfers() {
        // 32 cores each pushing 100 MB/s of payload would need 3.2 GB/s —
        // the 10 GbE port caps the stack near 1.13 GB/s.
        let perf = PerCorePerf {
            tps: 100.0,
            mem_gbps: 0.5,
            wire_gbps: 0.1,
        };
        let r = evaluate_server(&a7_mercury(32), perf);
        let per_stack_wire = r.wire_gbps / r.stacks as f64;
        assert!(per_stack_wire <= 1.18, "per-stack wire {per_stack_wire}");
        // TPS derated by the same factor.
        let expected_ratio = per_stack_wire / 3.2;
        let raw_tps = 32.0 * 100.0 * r.stacks as f64;
        assert!((r.tps / raw_tps - expected_ratio).abs() < 1e-6);
    }

    #[test]
    fn working_point_derate_only_when_wire_saturated() {
        let light = PerCorePerf {
            tps: 11_000.0,
            mem_gbps: 0.004,
            wire_gbps: 0.0007,
        };
        let p = stack_working_point(32, light);
        assert_eq!(p.derate, 1.0);
        assert!((p.tps - 32.0 * 11_000.0).abs() < 1e-9);
        assert!((p.mem_gbps - 32.0 * 0.004).abs() < 1e-12);

        let heavy = PerCorePerf {
            tps: 100.0,
            mem_gbps: 0.5,
            wire_gbps: 0.1,
        };
        let q = stack_working_point(32, heavy);
        assert!(q.derate < 1.0);
        // Every output scales by the same derate.
        assert!((q.tps - 32.0 * 100.0 * q.derate).abs() < 1e-9);
        assert!((q.mem_gbps - 32.0 * 0.5 * q.derate).abs() < 1e-9);
        assert!((q.wire_gbps - 32.0 * 0.1 * q.derate).abs() < 1e-9);
    }

    #[test]
    fn power_includes_base_overhead() {
        let perf = PerCorePerf::default();
        let r = evaluate_server(&a7_mercury(8), perf);
        assert!(r.power_w > 160.0, "wall power includes the 160 W base");
    }

    #[test]
    fn derived_metrics_consistent() {
        let perf = PerCorePerf {
            tps: 10_000.0,
            mem_gbps: 0.003,
            wire_gbps: 0.0006,
        };
        let r = evaluate_server(&a7_mercury(16), perf);
        assert!((r.ktps_per_watt - r.tps / 1000.0 / r.power_w).abs() < 1e-9);
        assert!((r.ktps_per_gb - r.tps / 1000.0 / r.memory_gb).abs() < 1e-9);
        assert_eq!(r.cores, 16 * r.stacks);
        assert!(r.area_cm2 > 0.0);
    }

    #[test]
    fn table4_mercury32_headline_band() {
        let stack = StackConfig::mercury(CoreConfig::a7_1ghz(), 32, true).unwrap();
        let plan = plan_server(&ServerConstraints::paper_1p5u(), stack, 6.25);
        let perf = PerCorePerf {
            tps: 11_000.0,
            mem_gbps: 0.004,
            wire_gbps: 0.0007,
        };
        let r = evaluate_server(&plan, perf);
        // Paper: 32.7 MTPS at 597 W => 54.8 KTPS/W.
        assert!((25e6..40e6).contains(&r.tps), "TPS {}", r.tps);
        assert!((450.0..700.0).contains(&r.power_w), "power {}", r.power_w);
        assert!(r.ktps_per_watt > 40.0, "efficiency {}", r.ktps_per_watt);
    }
}
