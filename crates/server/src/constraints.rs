//! The 1.5U chassis constraints (§5.4–§5.6).

/// Physical and electrical limits of the 1.5U server.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerConstraints {
    /// Power-supply rating, watts (HP 750 W common-slot unit).
    pub supply_w: f64,
    /// Power reserved for disk, motherboard, fans, etc., watts.
    pub base_overhead_w: f64,
    /// Fraction of the remaining power deliverable to components after
    /// conversion/delivery losses (the paper's conservative 20 % margin).
    pub delivery_efficiency: f64,
    /// Ethernet ports that fit the back panel.
    pub max_ports: u32,
    /// Motherboard edge, millimetres (13 inches).
    pub board_edge_mm: f64,
    /// Fraction of the board usable for stacks and PHYs.
    pub usable_board_fraction: f64,
}

impl ServerConstraints {
    /// The paper's 1.5U configuration.
    pub fn paper_1p5u() -> Self {
        ServerConstraints {
            supply_w: 750.0,
            base_overhead_w: 160.0,
            delivery_efficiency: 0.8,
            max_ports: 96,
            board_edge_mm: 330.2,
            usable_board_fraction: 0.77,
        }
    }

    /// Watts available to stacks + PHYs:
    /// `(750 − 160) × 0.8 = 472 W`.
    pub fn component_budget_w(&self) -> f64 {
        (self.supply_w - self.base_overhead_w) * self.delivery_efficiency
    }

    /// Converts component power back to wall power as the paper reports
    /// it: `components / efficiency + overhead`.
    pub fn wall_power_w(&self, component_w: f64) -> f64 {
        component_w / self.delivery_efficiency + self.base_overhead_w
    }

    /// Usable board area, mm².
    pub fn usable_board_mm2(&self) -> f64 {
        self.board_edge_mm * self.board_edge_mm * self.usable_board_fraction
    }

    /// Stacks that fit the board, each with half a dual-PHY package
    /// (§5.5: works out to ~128).
    pub fn max_stacks_by_area(&self) -> u32 {
        let per_stack =
            densekv_stack::area::PACKAGE_AREA_MM2 + densekv_net::phy::DUAL_PHY_PACKAGE_MM2 / 2.0;
        (self.usable_board_mm2() / per_stack).floor() as u32
    }
}

impl Default for ServerConstraints {
    fn default() -> Self {
        ServerConstraints::paper_1p5u()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn component_budget_matches_paper() {
        let c = ServerConstraints::paper_1p5u();
        assert!((c.component_budget_w() - 472.0).abs() < 1e-9);
    }

    #[test]
    fn wall_power_roundtrip() {
        let c = ServerConstraints::paper_1p5u();
        let wall = c.wall_power_w(c.component_budget_w());
        assert!((wall - 750.0).abs() < 1e-9);
        assert!((c.wall_power_w(0.0) - 160.0).abs() < 1e-9);
    }

    #[test]
    fn board_fits_about_128_stacks() {
        let c = ServerConstraints::paper_1p5u();
        // 13 in x 13 in = 1089 cm²; 77% over 661.5 mm² per stack ≈ 126.
        let n = c.max_stacks_by_area();
        assert!(
            (120..=130).contains(&n),
            "expected ≈128 stacks by area, got {n}"
        );
        assert!(n > c.max_ports, "area never binds before the port cap");
    }

    #[test]
    fn port_cap_is_96() {
        assert_eq!(ServerConstraints::paper_1p5u().max_ports, 96);
    }
}
