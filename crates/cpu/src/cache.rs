//! A true-LRU set-associative cache simulator.
//!
//! Small and exact: tags are stored per set in recency order, so hit/miss
//! behaviour (including conflict and capacity misses) is simulated rather
//! than assumed. The request-level model runs every instruction-fetch and
//! kernel-structure reference through instances of this type.

use densekv_sim::Duration;

/// Geometry and access latency of one cache level.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Line size in bytes (64 throughout the workspace).
    pub line_bytes: u64,
    /// Associativity (ways per set).
    pub ways: u32,
    /// Hit latency.
    pub latency: Duration,
}

impl CacheConfig {
    /// A 32 KB, 4-way L1 with a 1 ns hit (folded into core IPC for L1
    /// hits; the latency matters when a lower level returns through it).
    pub fn l1_32k() -> Self {
        CacheConfig {
            size_bytes: 32 << 10,
            line_bytes: 64,
            ways: 4,
            latency: Duration::from_nanos(1),
        }
    }

    /// The paper's 2 MB, 16-way L2 with a 15 ns hit.
    pub fn l2_2m() -> Self {
        CacheConfig {
            size_bytes: 2 << 20,
            line_bytes: 64,
            ways: 16,
            latency: Duration::from_nanos(15),
        }
    }

    /// Number of sets implied by the geometry.
    pub fn sets(&self) -> u64 {
        self.size_bytes / self.line_bytes / self.ways as u64
    }

    /// Number of lines the cache can hold.
    pub fn lines(&self) -> u64 {
        self.size_bytes / self.line_bytes
    }
}

/// A set-associative cache with true-LRU replacement.
///
/// Addresses are **line indices** (byte address ÷ 64), matching the rest
/// of the workspace.
///
/// # Examples
///
/// ```
/// use densekv_cpu::cache::{Cache, CacheConfig};
///
/// let mut c = Cache::new(CacheConfig::l1_32k());
/// assert!(!c.access(7));  // cold miss
/// assert!(c.access(7));   // now resident
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    ways: usize,
    /// Flat tag storage: `ways` slots per set, each set's segment
    /// ordered most-recently-used first with [`EMPTY`] filling the
    /// unoccupied tail. One contiguous `u32` allocation (a 2 MB L2 is
    /// 128 KB of tags) instead of a `Vec` per set, so the simulator's
    /// per-reference walk stays in a few host cache lines.
    tags: Vec<u32>,
    /// Set-index mask when the set count is a power of two (the common
    /// case for every geometry in the workspace); `None` falls back to
    /// `%`/`/` for odd set counts.
    pow2: Option<Pow2Index>,
    hits: u64,
    misses: u64,
}

/// Sentinel marking an unoccupied way. Real tags must stay below this,
/// which [`Cache::access`] asserts — with 64 B lines and ≥128 sets that
/// only excludes devices beyond ~2^45 bytes, far past anything modeled.
const EMPTY: u32 = u32::MAX;

/// Precomputed mask/shift replacing the per-reference `%`/`/` pair when
/// the set count is a power of two.
#[derive(Debug, Clone, Copy)]
struct Pow2Index {
    mask: u64,
    shift: u32,
}

impl Cache {
    /// Creates an empty (cold) cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero sets or ways).
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.sets();
        assert!(sets > 0 && config.ways > 0, "degenerate cache geometry");
        let pow2 = sets.is_power_of_two().then(|| Pow2Index {
            mask: sets - 1,
            shift: sets.trailing_zeros(),
        });
        Cache {
            ways: config.ways as usize,
            tags: vec![EMPTY; (sets * u64::from(config.ways)) as usize],
            pow2,
            hits: 0,
            misses: 0,
            config,
        }
    }

    /// The cache configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Looks up `line_addr`, updating LRU state and filling on miss.
    /// Returns `true` on a hit.
    ///
    /// # Panics
    ///
    /// Panics if the line's tag reaches the [`EMPTY`] sentinel — a
    /// device beyond the modeled address range.
    pub fn access(&mut self, line_addr: u64) -> bool {
        let (set_idx, tag) = match self.pow2 {
            Some(p) => ((line_addr & p.mask) as usize, line_addr >> p.shift),
            None => {
                let nsets = (self.tags.len() / self.ways) as u64;
                ((line_addr % nsets) as usize, line_addr / nsets)
            }
        };
        assert!(tag < u64::from(EMPTY), "line address out of modeled range");
        let tag = tag as u32;
        let set = &mut self.tags[set_idx * self.ways..set_idx * self.ways + self.ways];
        // Fast path: re-referencing the MRU way needs no recency shuffle.
        if set[0] == tag {
            self.hits += 1;
            return true;
        }
        if let Some(pos) = set[1..].iter().position(|&t| t == tag) {
            // Move to MRU position.
            set.copy_within(..pos + 1, 1);
            set[0] = tag;
            self.hits += 1;
            true
        } else {
            // Shift everything down one way and fill at MRU; sentinels
            // ride along in the tail, so the slot dropped off the end is
            // the true LRU tag exactly when the set was full.
            set.copy_within(..self.ways - 1, 1);
            set[0] = tag;
            self.misses += 1;
            false
        }
    }

    /// Hits recorded so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses recorded so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit fraction; 0 when no accesses have happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Clears hit/miss counters (contents stay warm).
    pub fn reset_counters(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }

    /// Credits hit/miss counters without touching contents — the replay
    /// path of the request memo layer, which accounts a request's cache
    /// traffic without re-walking it.
    pub fn credit(&mut self, hits: u64, misses: u64) {
        self.hits += hits;
        self.misses += misses;
    }

    /// Evicts everything and clears counters.
    pub fn flush(&mut self) {
        self.tags.fill(EMPTY);
        self.reset_counters();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(ways: u32, sets: u64) -> Cache {
        Cache::new(CacheConfig {
            size_bytes: 64 * ways as u64 * sets,
            line_bytes: 64,
            ways,
            latency: Duration::from_nanos(1),
        })
    }

    #[test]
    fn geometry_math() {
        let c = CacheConfig::l2_2m();
        assert_eq!(c.sets(), 2048);
        assert_eq!(c.lines(), 32_768);
        assert_eq!(CacheConfig::l1_32k().sets(), 128);
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny(2, 4);
        assert!(!c.access(0));
        assert!(c.access(0));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
        assert_eq!(c.hit_rate(), 0.5);
    }

    #[test]
    fn lru_evicts_least_recent() {
        // 1 set, 2 ways: lines 0 and 4 conflict-free (same set for all in
        // a 1-set cache).
        let mut c = tiny(2, 1);
        c.access(0);
        c.access(1);
        c.access(0); // 0 is MRU, 1 is LRU
        c.access(2); // evicts 1
        assert!(c.access(0), "0 must survive");
        assert!(!c.access(1), "1 was evicted");
    }

    #[test]
    fn set_indexing_isolates_sets() {
        let mut c = tiny(1, 2); // 2 sets, direct-mapped
        c.access(0); // set 0
        c.access(1); // set 1
        assert!(c.access(0));
        assert!(c.access(1));
        c.access(2); // set 0, evicts 0
        assert!(!c.access(0));
        assert!(c.access(1), "set 1 untouched");
    }

    #[test]
    fn working_set_within_capacity_stops_missing() {
        let mut c = Cache::new(CacheConfig::l1_32k()); // 512 lines
        for pass in 0..3 {
            for line in 0..512u64 {
                let hit = c.access(line);
                if pass > 0 {
                    assert!(hit, "pass {pass} line {line} should hit");
                }
            }
        }
    }

    #[test]
    fn working_set_beyond_capacity_thrashes() {
        let mut c = Cache::new(CacheConfig::l1_32k()); // 512 lines
                                                       // Cyclic sweep of 2x capacity with true LRU: every access misses.
        for _ in 0..3 {
            for line in 0..1024u64 {
                c.access(line);
            }
        }
        assert_eq!(c.hits(), 0);
    }

    /// A naive true-LRU model with the original `%`/`/` indexing and no
    /// MRU fast path — the behavior contract the optimized `access`
    /// must reproduce bit for bit.
    struct NaiveLru {
        sets: Vec<Vec<u64>>,
        ways: usize,
    }

    impl NaiveLru {
        fn new(config: &CacheConfig) -> Self {
            NaiveLru {
                sets: vec![Vec::new(); config.sets() as usize],
                ways: config.ways as usize,
            }
        }

        fn access(&mut self, line_addr: u64) -> bool {
            let nsets = self.sets.len() as u64;
            let set = &mut self.sets[(line_addr % nsets) as usize];
            let tag = line_addr / nsets;
            if let Some(pos) = set.iter().position(|&t| t == tag) {
                let t = set.remove(pos);
                set.insert(0, t);
                true
            } else {
                if set.len() == self.ways {
                    set.pop();
                }
                set.insert(0, tag);
                false
            }
        }
    }

    #[test]
    fn optimized_access_matches_naive_model_on_recorded_stream() {
        // A recorded reference stream with the access patterns the phase
        // engine generates: sequential instruction fetches, strided value
        // copies, repeated kernel-structure lines (MRU re-references),
        // and pseudo-random store lookups forcing conflicts/evictions.
        let mut stream = Vec::new();
        let mut state = 0x5EEDu64;
        for i in 0..6000u64 {
            stream.push(i % 640); // sequential with wrap
            stream.push(1000 + (i * 8) % 4096); // strided
            stream.push(7); // hot kernel line (MRU fast path)
            stream.push(7); // immediate re-reference
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            stream.push(state % 100_000); // random conflict pressure
        }
        for config in [
            CacheConfig::l1_32k(),
            CacheConfig::l2_2m(),
            // Tiny geometry to force constant eviction.
            CacheConfig {
                size_bytes: 64 * 2 * 4,
                line_bytes: 64,
                ways: 2,
                latency: Duration::from_nanos(1),
            },
        ] {
            let mut optimized = Cache::new(config.clone());
            let mut naive = NaiveLru::new(&config);
            let mut hits = 0u64;
            let mut misses = 0u64;
            for &line in &stream {
                let expect = naive.access(line);
                assert_eq!(
                    optimized.access(line),
                    expect,
                    "line {line} diverged ({} sets)",
                    config.sets()
                );
                if expect {
                    hits += 1;
                } else {
                    misses += 1;
                }
            }
            assert_eq!(optimized.hits(), hits);
            assert_eq!(optimized.misses(), misses);
            assert!(hits > 0 && misses > 0, "stream exercises both outcomes");
        }
    }

    #[test]
    fn non_power_of_two_sets_fall_back() {
        // 3 sets: the mask/shift path must not engage, and behavior
        // still matches the naive model.
        let config = CacheConfig {
            size_bytes: 64 * 2 * 3,
            line_bytes: 64,
            ways: 2,
            latency: Duration::from_nanos(1),
        };
        assert_eq!(config.sets(), 3);
        let mut optimized = Cache::new(config.clone());
        let mut naive = NaiveLru::new(&config);
        for line in (0..500u64).chain((0..500).map(|i| i * 7 % 64)) {
            assert_eq!(optimized.access(line), naive.access(line), "line {line}");
        }
    }

    #[test]
    fn flush_and_reset() {
        let mut c = tiny(2, 2);
        c.access(0);
        c.access(0);
        c.reset_counters();
        assert_eq!((c.hits(), c.misses()), (0, 0));
        assert!(c.access(0), "contents survive counter reset");
        c.flush();
        assert!(!c.access(0), "flush evicts contents");
    }
}
