//! Core configurations: ARM Cortex-A7 and Cortex-A15 as modeled in the
//! paper's gem5 experiments, with power and area from Table 1.

use densekv_sim::Duration;

/// Which microarchitecture a core uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoreKind {
    /// In-order, dual-issue Cortex-A7.
    CortexA7,
    /// Out-of-order Cortex-A15.
    CortexA15,
}

impl core::fmt::Display for CoreKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CoreKind::CortexA7 => write!(f, "A7"),
            CoreKind::CortexA15 => write!(f, "A15"),
        }
    }
}

/// A core's timing, power, and area parameters.
///
/// The timing parameters are the effective values a full-system simulation
/// exhibits on the Memcached + kernel-network code mix — not peak
/// datasheet numbers. Calibration targets are listed in DESIGN.md.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreConfig {
    /// Microarchitecture.
    pub kind: CoreKind,
    /// Clock frequency, GHz.
    pub freq_ghz: f64,
    /// Effective committed instructions per cycle on this workload.
    pub ipc: f64,
    /// Memory-level parallelism: how many demand misses the core overlaps
    /// (1.0 for the in-order A7).
    pub mlp: f64,
    /// Overlap factor for sequential (streaming) transfers, where the
    /// prefetcher can run ahead.
    pub stream_mlp: f64,
    /// Core power, milliwatts (Table 1).
    pub power_mw: f64,
    /// Core area, mm² in 28 nm (Table 1).
    pub area_mm2: f64,
}

impl CoreConfig {
    /// Cortex-A7 at 1 GHz (Table 1: 100 mW, 0.58 mm²).
    pub fn a7_1ghz() -> Self {
        CoreConfig {
            kind: CoreKind::CortexA7,
            freq_ghz: 1.0,
            ipc: 0.70,
            mlp: 1.0,
            stream_mlp: 2.0,
            power_mw: 100.0,
            area_mm2: 0.58,
        }
    }

    /// Cortex-A15 at 1 GHz (Table 1: 600 mW, 2.82 mm²).
    pub fn a15_1ghz() -> Self {
        CoreConfig {
            kind: CoreKind::CortexA15,
            freq_ghz: 1.0,
            ipc: 2.0,
            mlp: 3.0,
            stream_mlp: 4.0,
            power_mw: 600.0,
            area_mm2: 2.82,
        }
    }

    /// Cortex-A15 at 1.5 GHz (Table 1: 1,000 mW, 2.82 mm²).
    pub fn a15_1p5ghz() -> Self {
        CoreConfig {
            freq_ghz: 1.5,
            power_mw: 1000.0,
            ..CoreConfig::a15_1ghz()
        }
    }

    /// Time to commit `instructions` with no memory stalls.
    pub fn instruction_time(&self, instructions: u64) -> Duration {
        Duration::from_nanos_f64(instructions as f64 / (self.ipc * self.freq_ghz))
    }

    /// One clock period.
    pub fn cycle_time(&self) -> Duration {
        Duration::from_nanos_f64(1.0 / self.freq_ghz)
    }

    /// Short label like `A7 @1GHz` used in reports.
    pub fn label(&self) -> String {
        format!("{} @{}GHz", self.kind, self.freq_ghz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_power_and_area() {
        assert_eq!(CoreConfig::a7_1ghz().power_mw, 100.0);
        assert_eq!(CoreConfig::a7_1ghz().area_mm2, 0.58);
        assert_eq!(CoreConfig::a15_1ghz().power_mw, 600.0);
        assert_eq!(CoreConfig::a15_1p5ghz().power_mw, 1000.0);
        assert_eq!(CoreConfig::a15_1p5ghz().area_mm2, 2.82);
    }

    #[test]
    fn instruction_time_scales_with_ipc_and_freq() {
        let a7 = CoreConfig::a7_1ghz();
        let a15 = CoreConfig::a15_1ghz();
        let fast15 = CoreConfig::a15_1p5ghz();
        let n = 10_000;
        assert!(a15.instruction_time(n) < a7.instruction_time(n));
        assert!(fast15.instruction_time(n) < a15.instruction_time(n));
        // A15 @1 GHz: 10k instructions at IPC 2.0 = 5 us.
        assert_eq!(a15.instruction_time(n), Duration::from_micros(5));
    }

    #[test]
    fn a7_has_no_miss_overlap() {
        assert_eq!(CoreConfig::a7_1ghz().mlp, 1.0);
        assert!(CoreConfig::a15_1ghz().mlp > 1.0);
    }

    #[test]
    fn cycle_time() {
        assert_eq!(CoreConfig::a7_1ghz().cycle_time(), Duration::from_nanos(1));
        assert_eq!(
            CoreConfig::a15_1p5ghz().cycle_time(),
            Duration::from_ps(667)
        );
    }

    #[test]
    fn labels() {
        assert_eq!(CoreConfig::a7_1ghz().label(), "A7 @1GHz");
        assert_eq!(CoreConfig::a15_1p5ghz().label(), "A15 @1.5GHz");
    }
}
