//! The phase timing engine.
//!
//! A Memcached request decomposes into phases (Fig. 4 of the paper:
//! network stack, hash computation, store metadata, plus value movement).
//! Each phase is described by a [`PhaseSpec`] — an instruction budget and
//! a memory-reference mix — and "executed" against the core's cache
//! hierarchy and the stack's memory device. The result is the phase's
//! simulated time, split into compute and stall components, which is what
//! the figure-4 experiment reports.
//!
//! Reference classes:
//!
//! * **Instruction fetches.** Scale-out workloads have instruction
//!   footprints far beyond an L1I (Ferdman et al., ASPLOS '12). Each phase
//!   cycles a fetch cursor through its own footprint; the resulting L1I
//!   misses hit the L2 when present (the paper notes a 2 MB L2 holds the
//!   entire instruction footprint, §4.2.1) and memory otherwise.
//! * **Kernel-structure references** — socket buffers, protocol control
//!   blocks, dispatch tables. Random within a ~768 KB hot region: they
//!   thrash a 32 KB L1D but fit the 2 MB L2.
//! * **Store references** — hash-bucket walks, item headers, and value
//!   lines. These are spread over the stack's whole data capacity
//!   (gigabytes), so their cache hit rate is negligible and they go
//!   straight to the memory device; sequential value transfers overlap by
//!   the core's `stream_mlp`.
//! * **Uncached operations** — NIC doorbells/MMIO, priced at a fixed
//!   latency that no core overlaps.

use std::collections::HashMap;

use densekv_mem::{AccessKind, MemoryTiming};
use densekv_sim::Duration;

use crate::cache::{Cache, CacheConfig};
use crate::core::CoreConfig;

/// Line-granular base of the kernel hot region (arbitrary, disjoint from
/// instruction and store regions).
const KERNEL_BASE_LINE: u64 = 0x8000_0000;
/// Lines in the kernel hot region: 12,288 lines = 768 KB.
const KERNEL_REGION_LINES: u64 = 12_288;
/// Line-granular base where per-phase instruction footprints start.
const INSTR_BASE_LINE: u64 = 0x4000_0000;

/// A sequential value transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamRef {
    /// First line of the transfer (device line address).
    pub start_line: u64,
    /// Number of 64 B lines.
    pub lines: u64,
    /// Direction.
    pub kind: AccessKind,
}

/// One request phase's instruction budget and reference mix.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseSpec {
    /// Phase name; phases with the same name share an instruction
    /// footprint (and therefore warm each other's caches).
    pub name: &'static str,
    /// Committed instructions.
    pub instructions: u64,
    /// Instruction-cache footprint the phase cycles through, in lines.
    pub ifetch_footprint_lines: u64,
    /// Off-loop instruction fetches per 1,000 instructions (an L1I-MPKI
    /// proxy; Ferdman et al. measure O(10) for scale-out code).
    pub ifetch_per_kinstr: u64,
    /// Random references into the kernel hot region.
    pub kernel_refs: u64,
    /// Explicit store references (hash buckets, item headers), as device
    /// line addresses.
    pub store_refs: Vec<u64>,
    /// Optional bulk value transfer.
    pub stream: Option<StreamRef>,
    /// Uncached MMIO operations (NIC doorbells, DMA descriptors).
    pub uncached_ops: u64,
}

impl PhaseSpec {
    /// A compute-only phase (no memory traffic beyond its fetch stream).
    pub fn compute(name: &'static str, instructions: u64) -> Self {
        PhaseSpec {
            name,
            instructions,
            ifetch_footprint_lines: 64,
            ifetch_per_kinstr: 2,
            kernel_refs: 0,
            store_refs: Vec::new(),
            stream: None,
            uncached_ops: 0,
        }
    }
}

/// Where a simulated reference was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Level {
    L1,
    L2,
    Memory,
}

/// Timing result of one phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PhaseResult {
    /// Total phase time.
    pub time: Duration,
    /// Pure compute component (instructions / (IPC × f) + MMIO).
    pub busy: Duration,
    /// Memory-stall component.
    pub stall: Duration,
    /// References that reached the memory device.
    pub mem_refs: u64,
    /// References satisfied by the L2.
    pub l2_hits: u64,
    /// Bytes moved at the memory device by this phase.
    pub mem_bytes: u64,
}

impl PhaseResult {
    /// Accumulates another result into this one.
    pub fn merge(&mut self, other: &PhaseResult) {
        self.time += other.time;
        self.busy += other.busy;
        self.stall += other.stall;
        self.mem_refs += other.mem_refs;
        self.l2_hits += other.l2_hits;
        self.mem_bytes += other.mem_bytes;
    }
}

/// Hit/miss counts of one cache level at a point in time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheLevelStats {
    /// Lookups satisfied by this level.
    pub hits: u64,
    /// Lookups that fell through.
    pub misses: u64,
}

impl CacheLevelStats {
    /// Hit fraction; `0.0` before any lookup.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Total lookups against this level (every lookup pays the level's
    /// access energy, hit or miss).
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Counter growth since an `earlier` snapshot (saturating, so a
    /// reset between snapshots yields zeros rather than wrapping).
    #[must_use]
    pub fn delta(&self, earlier: &CacheLevelStats) -> CacheLevelStats {
        CacheLevelStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
        }
    }
}

/// Per-level snapshot of the engine's cache hierarchy — what the
/// telemetry layer polls into its gauges between requests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheHierarchyStats {
    /// Instruction L1.
    pub l1i: CacheLevelStats,
    /// Data L1.
    pub l1d: CacheLevelStats,
    /// Unified L2, when configured.
    pub l2: Option<CacheLevelStats>,
}

impl CacheHierarchyStats {
    /// Per-level growth since an `earlier` snapshot — the quantity the
    /// energy layer charges per-access joules for.
    #[must_use]
    pub fn delta(&self, earlier: &CacheHierarchyStats) -> CacheHierarchyStats {
        CacheHierarchyStats {
            l1i: self.l1i.delta(&earlier.l1i),
            l1d: self.l1d.delta(&earlier.l1d),
            l2: self.l2.map(|l2| l2.delta(&earlier.l2.unwrap_or_default())),
        }
    }

    /// Combined L1 I+D lookups.
    #[must_use]
    pub fn l1_accesses(&self) -> u64 {
        self.l1i.accesses() + self.l1d.accesses()
    }

    /// L2 lookups (`0` without an L2).
    #[must_use]
    pub fn l2_accesses(&self) -> u64 {
        self.l2.map_or(0, |l2| l2.accesses())
    }
}

/// Deterministic hot-loop state of a [`PhaseEngine`] at a point in time:
/// fetch cursors, the kernel-region cursor, and cache counters. Captured
/// before a real execution so [`PhaseEngine::replay_delta`] can express
/// that execution's engine-side effect.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineSnapshot {
    kernel_cursor: u64,
    /// `(phase name, fetch cursor)`, sorted by name for stable equality.
    instr_cursors: Vec<(&'static str, u64)>,
    cache: CacheHierarchyStats,
}

/// The engine-side effect of one request: cursor advances plus cache
/// counter growth.
///
/// [`PhaseEngine::apply_replay`] leaves counters and cursors exactly
/// where a real execution would have — cache *contents* are untouched,
/// which is sound precisely when the replayed reference pattern no
/// longer changes any resident set (the post-warm steady state the memo
/// layer in `densekv-core` observes before arming a family).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EngineDelta {
    /// Kernel-region cursor advance, modulo the region.
    kernel_advance: u64,
    /// `(phase name, cursor advance, footprint)`, sorted by name.
    instr_advances: Vec<(&'static str, u64, u64)>,
    l1i: CacheLevelStats,
    l1d: CacheLevelStats,
    l2: Option<CacheLevelStats>,
}

/// Cache hierarchy + core parameters; executes [`PhaseSpec`]s.
///
/// # Examples
///
/// ```
/// use densekv_cpu::engine::{PhaseEngine, PhaseSpec};
/// use densekv_cpu::CoreConfig;
/// use densekv_mem::dram::{DramConfig, DramStack};
///
/// let mut engine = PhaseEngine::with_l2(CoreConfig::a7_1ghz());
/// let mut dram = DramStack::new(DramConfig::default());
/// let result = engine.run(&PhaseSpec::compute("hash", 1_400), &mut dram);
/// // 1,400 instructions at IPC 0.7 and 1 GHz = 2 us of compute.
/// assert_eq!(result.busy, densekv_sim::Duration::from_micros(2));
/// ```
#[derive(Debug, Clone)]
pub struct PhaseEngine {
    core: CoreConfig,
    l1i: Cache,
    l1d: Cache,
    l2: Option<Cache>,
    uncached_latency: Duration,
    /// Per-phase-name instruction footprint
    /// `(base, cursor, footprint, wraps)`.
    instr_regions: HashMap<&'static str, (u64, u64, u64, u64)>,
    next_instr_base: u64,
    /// Cursor cycling the kernel hot region (shared by all phases).
    kernel_cursor: u64,
    /// Completed passes over the kernel hot region.
    kernel_wraps: u64,
    /// Per-L2-set upper bound on lines ever inserted: the kernel region
    /// plus every registered instruction footprint. While every set's
    /// bound stays ≤ the L2's associativity, the L2 can never evict —
    /// which makes its LRU *order* unobservable and licenses the
    /// residency shortcut below.
    l2_occupancy: Vec<u32>,
    /// Cached `max(l2_occupancy) ≤ l2.ways`: the residency shortcut is
    /// sound.
    l2_resident_ok: bool,
    /// Registered footprint per phase name (grows if a later spec names
    /// a larger footprint, which widens the occupancy bound).
    l2_registered: HashMap<&'static str, u64>,
    /// Whether any phase has skipped an L2 LRU update. Once true, the
    /// occupancy bound must keep holding: exceeding it afterwards would
    /// make eviction order observable *and* already stale, so the engine
    /// panics rather than silently diverge.
    l2_shortcut_used: bool,
}

impl PhaseEngine {
    /// Creates an engine with 32 KB L1s and a 2 MB L2.
    pub fn with_l2(core: CoreConfig) -> Self {
        Self::new(core, Some(CacheConfig::l2_2m()))
    }

    /// Creates an engine with 32 KB L1s and no L2 (the paper's "no L2"
    /// configurations issue requests directly to memory, §4.1.3).
    pub fn without_l2(core: CoreConfig) -> Self {
        Self::new(core, None)
    }

    /// Creates an engine with an explicit L2 choice.
    pub fn new(core: CoreConfig, l2: Option<CacheConfig>) -> Self {
        let l2_occupancy = l2
            .as_ref()
            .map(|c| vec![0u32; c.sets() as usize])
            .unwrap_or_default();
        let mut engine = PhaseEngine {
            core,
            l1i: Cache::new(CacheConfig::l1_32k()),
            l1d: Cache::new(CacheConfig::l1_32k()),
            l2: l2.map(Cache::new),
            uncached_latency: Duration::from_nanos(300),
            instr_regions: HashMap::new(),
            next_instr_base: INSTR_BASE_LINE,
            kernel_cursor: 0,
            kernel_wraps: 0,
            l2_occupancy,
            l2_resident_ok: false,
            l2_registered: HashMap::new(),
            l2_shortcut_used: false,
        };
        if engine.l2.is_some() {
            engine.l2_resident_ok = true;
            engine.register_l2_block(KERNEL_BASE_LINE, KERNEL_REGION_LINES);
        }
        engine
    }

    /// Widens the L2 insert-occupancy bound by a contiguous `lines`-long
    /// block at `base` and re-evaluates the residency shortcut.
    ///
    /// # Panics
    ///
    /// Panics if the bound exceeds the L2's associativity *after* the
    /// shortcut has already skipped LRU updates: from that point the
    /// eviction order a real walk would need is unrecoverable, so the
    /// engine fails loudly instead of silently changing results. Keep
    /// the combined instruction + kernel footprint per set within the
    /// L2's ways (the workspace's phase set uses 11 of 16).
    fn register_l2_block(&mut self, base: u64, lines: u64) {
        let Some(l2) = self.l2.as_ref() else { return };
        let ways = l2.config().ways;
        let sets = self.l2_occupancy.len() as u64;
        let whole = (lines / sets) as u32;
        if whole > 0 {
            for c in &mut self.l2_occupancy {
                *c += whole;
            }
        }
        let start = (base % sets) as usize;
        for i in 0..(lines % sets) as usize {
            let s = (start + i) % sets as usize;
            self.l2_occupancy[s] += 1;
        }
        let max = self.l2_occupancy.iter().copied().max().unwrap_or(0);
        if max > ways {
            assert!(
                !self.l2_shortcut_used,
                "instruction footprints exceed the L2 residency bound \
                 ({max} > {ways} lines in one set) after the resident-L2 \
                 shortcut already skipped LRU updates"
            );
            self.l2_resident_ok = false;
        }
    }

    /// Disables the resident-L2 shortcut, forcing every reference
    /// through the full LRU walk. Exists for differential tests; results
    /// are bit-identical either way.
    #[doc(hidden)]
    pub fn disable_l2_residency_shortcut(&mut self) {
        self.l2_resident_ok = false;
    }

    /// Whether every cyclic region has completed at least one full pass:
    /// the kernel hot region and every phase's instruction footprint. At
    /// that point all of their lines are resident in the L2 (the combined
    /// footprint fits without eviction), so per-request timing has
    /// reached its steady state — the precondition the memo layer in
    /// `densekv-core` requires before arming a replay family. During the
    /// cold fill, timing sits on long *locally constant* plateaus (every
    /// reference misses the same way), which a streak check alone would
    /// mistake for steady state.
    pub fn warm(&self) -> bool {
        self.kernel_wraps > 0
            && self
                .instr_regions
                .values()
                .all(|&(_, _, _, wraps)| wraps > 0)
    }

    /// The core configuration.
    pub fn core(&self) -> &CoreConfig {
        &self.core
    }

    /// Whether an L2 is present.
    pub fn has_l2(&self) -> bool {
        self.l2.is_some()
    }

    /// Overrides the uncached-operation latency.
    pub fn set_uncached_latency(&mut self, latency: Duration) {
        self.uncached_latency = latency;
    }

    /// Snapshot of every cache level's lifetime hit/miss counters.
    pub fn cache_stats(&self) -> CacheHierarchyStats {
        let level = |c: &Cache| CacheLevelStats {
            hits: c.hits(),
            misses: c.misses(),
        };
        CacheHierarchyStats {
            l1i: level(&self.l1i),
            l1d: level(&self.l1d),
            l2: self.l2.as_ref().map(level),
        }
    }

    /// Captures the hot-loop state (cursors + cache counters) so a
    /// subsequent [`PhaseEngine::replay_delta`] can express what one
    /// execution did to the engine.
    pub fn replay_snapshot(&self) -> EngineSnapshot {
        let mut instr_cursors: Vec<(&'static str, u64)> = self
            .instr_regions
            .iter()
            .map(|(&name, &(_, cursor, _, _))| (name, cursor))
            .collect();
        instr_cursors.sort_unstable_by_key(|&(name, _)| name);
        EngineSnapshot {
            kernel_cursor: self.kernel_cursor,
            instr_cursors,
            cache: self.cache_stats(),
        }
    }

    /// The engine-side effect since `before`: per-phase fetch-cursor
    /// advances (modulo each footprint), the kernel-cursor advance, and
    /// cache counter growth.
    pub fn replay_delta(&self, before: &EngineSnapshot) -> EngineDelta {
        let mut instr_advances: Vec<(&'static str, u64, u64)> = self
            .instr_regions
            .iter()
            .map(|(&name, &(_, cursor, footprint, _))| {
                let prior = before
                    .instr_cursors
                    .binary_search_by_key(&name, |&(n, _)| n)
                    .map(|i| before.instr_cursors[i].1)
                    .unwrap_or(0);
                let advance = (cursor + footprint - prior % footprint) % footprint;
                (name, advance, footprint)
            })
            .collect();
        instr_advances.sort_unstable_by_key(|&(name, _, _)| name);
        let cache = self.cache_stats().delta(&before.cache);
        EngineDelta {
            kernel_advance: (self.kernel_cursor + KERNEL_REGION_LINES - before.kernel_cursor)
                % KERNEL_REGION_LINES,
            instr_advances,
            l1i: cache.l1i,
            l1d: cache.l1d,
            l2: cache.l2,
        }
    }

    /// Replays a previously captured delta: advances every cursor and
    /// credits every cache counter exactly as the recorded execution
    /// did, without touching cache contents. See [`EngineDelta`] for
    /// when this is sound.
    pub fn apply_replay(&mut self, delta: &EngineDelta) {
        self.kernel_cursor = (self.kernel_cursor + delta.kernel_advance) % KERNEL_REGION_LINES;
        for &(name, advance, footprint) in &delta.instr_advances {
            if let Some(entry) = self.instr_regions.get_mut(name) {
                entry.1 = (entry.1 + advance) % footprint;
            }
        }
        self.l1i.credit(delta.l1i.hits, delta.l1i.misses);
        self.l1d.credit(delta.l1d.hits, delta.l1d.misses);
        if let (Some(l2), Some(d)) = (self.l2.as_mut(), delta.l2) {
            l2.credit(d.hits, d.misses);
        }
    }

    /// Walks one reference through the hierarchy (for instruction or
    /// kernel classes); returns where it hit.
    fn lookup(l1: &mut Cache, l2: &mut Option<Cache>, line: u64) -> Level {
        if l1.access(line) {
            return Level::L1;
        }
        match l2 {
            Some(l2) => {
                if l2.access(line) {
                    Level::L2
                } else {
                    Level::Memory
                }
            }
            None => Level::Memory,
        }
    }

    /// Executes a phase against `mem`, returning its timing. The phase's
    /// stream (if any) also targets `mem`.
    pub fn run(&mut self, spec: &PhaseSpec, mem: &mut dyn MemoryTiming) -> PhaseResult {
        self.run_split(spec, mem, None)
    }

    /// Executes a phase with distinct devices: instruction fetches,
    /// kernel references, and store references hit `backing` (the memory
    /// behind the caches), while the bulk stream — when `stream_dev` is
    /// provided — targets a different device (e.g. Iridium's on-die
    /// packet-buffer SRAM).
    pub fn run_split(
        &mut self,
        spec: &PhaseSpec,
        mem: &mut dyn MemoryTiming,
        mut stream_dev: Option<&mut dyn MemoryTiming>,
    ) -> PhaseResult {
        let mut result = PhaseResult::default();
        let bytes_before = mem.bytes_moved() + stream_dev.as_deref().map_or(0, |d| d.bytes_moved());

        // Compute: instruction commit plus MMIO (never overlapped).
        result.busy = self.core.instruction_time(spec.instructions)
            + self.uncached_latency * spec.uncached_ops;

        let l2_latency = self
            .l2
            .as_ref()
            .map(|c| c.config().latency)
            .unwrap_or(Duration::ZERO);

        // Demand-miss overlap is a pure function of core and device, so
        // compute it (and its reciprocal) once instead of per miss.
        let miss_overlap = self
            .core
            .mlp
            .min(mem.max_overlap(AccessKind::Read))
            .max(1.0);
        let miss_scale = 1.0 / miss_overlap;

        // Instruction fetches: cycle the phase's cursor through its
        // footprint. The cursor increments by one per fetch, so a
        // wrap-compare replaces the per-reference `%`; L2-hit stalls are
        // a fixed integer latency, so they accumulate as a count and
        // multiply out once (bit-identical to per-hit addition because
        // `Duration` is integer picoseconds).
        let fetches = spec.instructions * spec.ifetch_per_kinstr / 1000;
        if fetches > 0 {
            let footprint = spec.ifetch_footprint_lines.max(1);
            let (base, cursor, mut wraps) = {
                let entry = self.instr_regions.entry(spec.name).or_insert((
                    self.next_instr_base,
                    0,
                    footprint,
                    0,
                ));
                (entry.0, entry.1, entry.3)
            };
            if base == self.next_instr_base {
                self.next_instr_base += footprint;
            }
            // Keep the L2 occupancy bound covering this region (widening
            // it if a later spec names a larger footprint).
            let registered = self.l2_registered.get(spec.name).copied().unwrap_or(0);
            if footprint > registered {
                self.register_l2_block(base + registered, footprint - registered);
                self.l2_registered.insert(spec.name, footprint);
            }
            let mut cur = cursor % footprint;
            let mut l2_hits = 0u64;
            // Resident-L2 shortcut: once the region has completed a full
            // pass, every line of it was inserted into an L2 that — per
            // the occupancy bound — can never evict. An L1 miss is then
            // an L2 hit by construction, and the skipped LRU reorder is
            // unobservable (order only matters to evictions). Counters
            // and timing are bit-identical to the full walk.
            if self.l2_resident_ok && wraps > 0 {
                self.l2_shortcut_used = true;
                for _ in 0..fetches {
                    let line = base + cur;
                    cur += 1;
                    if cur == footprint {
                        cur = 0;
                        wraps += 1;
                    }
                    if !self.l1i.access(line) {
                        l2_hits += 1;
                    }
                }
                self.l2
                    .as_mut()
                    .expect("residency shortcut requires an L2")
                    .credit(l2_hits, 0);
            } else {
                for _ in 0..fetches {
                    let line = base + cur;
                    cur += 1;
                    if cur == footprint {
                        cur = 0;
                        wraps += 1;
                    }
                    match Self::lookup(&mut self.l1i, &mut self.l2, line) {
                        Level::L1 => {}
                        Level::L2 => l2_hits += 1,
                        Level::Memory => {
                            result.mem_refs += 1;
                            let lat = mem.line_access(line, AccessKind::Read);
                            result.stall += lat * miss_scale;
                        }
                    }
                }
            }
            result.l2_hits += l2_hits;
            result.stall += l2_latency * l2_hits;
            self.instr_regions
                .insert(spec.name, (base, cur, footprint, wraps));
        }

        // Kernel-structure references: cycle the hot region. A cyclic
        // pattern has the same steady-state behaviour as the real mix —
        // it thrashes a 32 KB L1D but fits (and stays warm in) a 2 MB L2
        // — while warming deterministically within one region pass.
        let mut kernel_l2_hits = 0u64;
        if self.l2_resident_ok && self.kernel_wraps > 0 && spec.kernel_refs > 0 {
            // Same residency argument as the fetch loop: after one full
            // pass the kernel region is pinned in the never-evicting L2.
            self.l2_shortcut_used = true;
            for _ in 0..spec.kernel_refs {
                let line = KERNEL_BASE_LINE + self.kernel_cursor;
                self.kernel_cursor += 1;
                if self.kernel_cursor == KERNEL_REGION_LINES {
                    self.kernel_cursor = 0;
                    self.kernel_wraps += 1;
                }
                if !self.l1d.access(line) {
                    kernel_l2_hits += 1;
                }
            }
            self.l2
                .as_mut()
                .expect("residency shortcut requires an L2")
                .credit(kernel_l2_hits, 0);
        } else {
            for _ in 0..spec.kernel_refs {
                let line = KERNEL_BASE_LINE + self.kernel_cursor;
                self.kernel_cursor += 1;
                if self.kernel_cursor == KERNEL_REGION_LINES {
                    self.kernel_cursor = 0;
                    self.kernel_wraps += 1;
                }
                match Self::lookup(&mut self.l1d, &mut self.l2, line) {
                    Level::L1 => {}
                    Level::L2 => kernel_l2_hits += 1,
                    Level::Memory => {
                        result.mem_refs += 1;
                        let lat = mem.line_access(line, AccessKind::Read);
                        result.stall += lat * miss_scale;
                    }
                }
            }
        }
        result.l2_hits += kernel_l2_hits;
        result.stall += l2_latency * kernel_l2_hits;

        // Store references: gigabyte-scale working set, modeled as always
        // missing (see module docs); demand misses overlap by `mlp`,
        // capped by what the device sustains.
        for &line in &spec.store_refs {
            result.mem_refs += 1;
            let lat = mem.line_access(line, AccessKind::Read);
            result.stall += lat * miss_scale;
        }

        // Bulk value transfer: sequential lines overlap by `stream_mlp`,
        // capped by the device.
        if let Some(stream) = spec.stream {
            let dev: &mut dyn MemoryTiming = match stream_dev.as_deref_mut() {
                Some(d) => d,
                None => mem,
            };
            let stream_scale = 1.0
                / self
                    .core
                    .stream_mlp
                    .min(dev.max_overlap(stream.kind))
                    .max(1.0);
            for i in 0..stream.lines {
                result.mem_refs += 1;
                let lat = dev.line_access(stream.start_line + i, stream.kind);
                result.stall += lat * stream_scale;
            }
        }

        result.mem_bytes =
            mem.bytes_moved() + stream_dev.as_deref().map_or(0, |d| d.bytes_moved()) - bytes_before;
        result.time = result.busy + result.stall;
        result
    }

    /// Runs a phase repeatedly until caches warm up, then returns a fresh
    /// measurement — used by experiments that want steady-state numbers.
    pub fn run_steady(
        &mut self,
        spec: &PhaseSpec,
        mem: &mut dyn MemoryTiming,
        warmup: u32,
    ) -> PhaseResult {
        for _ in 0..warmup {
            self.run(spec, mem);
        }
        self.run(spec, mem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use densekv_mem::dram::{DramConfig, DramStack};
    use densekv_mem::flash::{FlashArray, FlashConfig};

    fn dram(ns: u64) -> DramStack {
        DramStack::new(DramConfig::mercury(Duration::from_nanos(ns)))
    }

    fn net_phase() -> PhaseSpec {
        PhaseSpec {
            name: "net-rx",
            instructions: 12_000,
            ifetch_footprint_lines: 3_000,
            ifetch_per_kinstr: 12,
            kernel_refs: 60,
            store_refs: Vec::new(),
            stream: None,
            uncached_ops: 4,
        }
    }

    #[test]
    fn cache_stats_snapshot_per_level() {
        let mut e = PhaseEngine::with_l2(CoreConfig::a7_1ghz());
        let mut mem = dram(10);
        assert_eq!(e.cache_stats().l1i, CacheLevelStats::default());
        assert_eq!(e.cache_stats().l2, Some(CacheLevelStats::default()));
        e.run_steady(&net_phase(), &mut mem, 5);
        let stats = e.cache_stats();
        assert!(stats.l1i.hits + stats.l1i.misses > 0);
        assert!(stats.l1d.hits + stats.l1d.misses > 0);
        let l2 = stats.l2.expect("engine built with an L2");
        assert!(l2.hits + l2.misses > 0);
        assert!((0.0..=1.0).contains(&stats.l1i.hit_rate()));

        let no_l2 = PhaseEngine::without_l2(CoreConfig::a7_1ghz());
        assert_eq!(no_l2.cache_stats().l2, None);
        // An untouched level reports the documented sentinel, not NaN.
        assert_eq!(no_l2.cache_stats().l1d.hit_rate(), 0.0);
    }

    #[test]
    fn compute_phase_time_is_instruction_bound() {
        let mut e = PhaseEngine::with_l2(CoreConfig::a15_1ghz());
        let mut mem = dram(10);
        let r = e.run(&PhaseSpec::compute("x", 2_000), &mut mem);
        assert_eq!(r.busy, Duration::from_micros(1));
        assert!(r.stall < r.busy);
    }

    #[test]
    fn a15_faster_than_a7_on_same_phase() {
        let mut a7 = PhaseEngine::with_l2(CoreConfig::a7_1ghz());
        let mut a15 = PhaseEngine::with_l2(CoreConfig::a15_1ghz());
        let mut m1 = dram(10);
        let mut m2 = dram(10);
        let spec = net_phase();
        let r7 = a7.run_steady(&spec, &mut m1, 5);
        let r15 = a15.run_steady(&spec, &mut m2, 5);
        assert!(r15.time < r7.time);
        let ratio = r7.time.as_nanos_f64() / r15.time.as_nanos_f64();
        assert!(ratio > 2.0 && ratio < 4.0, "A15/A7 ratio {ratio}");
    }

    #[test]
    fn l2_absorbs_kernel_refs_after_warmup() {
        let mut e = PhaseEngine::with_l2(CoreConfig::a7_1ghz());
        let mut mem = dram(100);
        let spec = net_phase();
        // Warm the L2 with the kernel region and the fetch footprint.
        for _ in 0..600 {
            e.run(&spec, &mut mem);
        }
        let r = e.run(&spec, &mut mem);
        assert!(
            r.mem_refs < 6,
            "warm L2 should satisfy nearly all refs, saw {} memory refs",
            r.mem_refs
        );
        assert!(r.l2_hits > 50);
    }

    #[test]
    fn no_l2_sends_misses_to_memory() {
        let mut e = PhaseEngine::without_l2(CoreConfig::a7_1ghz());
        let mut mem = dram(100);
        let spec = net_phase();
        let r = e.run_steady(&spec, &mut mem, 10);
        assert_eq!(r.l2_hits, 0);
        assert!(r.mem_refs > 50, "misses must reach memory: {}", r.mem_refs);
    }

    #[test]
    fn no_l2_hurts_more_at_high_latency() {
        let time_at = |ns: u64, l2: bool| {
            let core = CoreConfig::a7_1ghz();
            let mut e = if l2 {
                PhaseEngine::with_l2(core)
            } else {
                PhaseEngine::without_l2(core)
            };
            let mut mem = dram(ns);
            e.run_steady(&net_phase(), &mut mem, 600).time
        };
        // Paper §6.2: at 10 ns the L2 provides no benefit (may even
        // hinder); at 100 ns it significantly helps.
        let slowdown_no_l2_100 =
            time_at(100, false).as_nanos_f64() / time_at(100, true).as_nanos_f64();
        let slowdown_no_l2_10 =
            time_at(10, false).as_nanos_f64() / time_at(10, true).as_nanos_f64();
        assert!(slowdown_no_l2_100 > 1.3, "at 100 ns: {slowdown_no_l2_100}");
        assert!(slowdown_no_l2_10 < 1.1, "at 10 ns: {slowdown_no_l2_10}");
    }

    #[test]
    fn stream_overlaps_by_stream_mlp() {
        let mut e = PhaseEngine::with_l2(CoreConfig::a7_1ghz());
        let mut mem = dram(10);
        let mut spec = PhaseSpec::compute("copy", 0);
        spec.stream = Some(StreamRef {
            start_line: 0,
            lines: 1000,
            kind: AccessKind::Read,
        });
        let r = e.run(&spec, &mut mem);
        // 1000 lines x 20.24 ns / stream_mlp 2 = 10.12 us.
        let expect = Duration::from_nanos_f64(1000.0 * 20.24 / 2.0);
        assert_eq!(r.stall, expect);
        assert_eq!(r.mem_bytes, 64_000);
    }

    #[test]
    fn store_refs_always_reach_memory() {
        let mut e = PhaseEngine::with_l2(CoreConfig::a15_1ghz());
        let mut mem = dram(10);
        let mut spec = PhaseSpec::compute("get", 0);
        spec.store_refs = vec![1, 1, 1]; // even repeats bypass the caches
        let r = e.run(&spec, &mut mem);
        assert_eq!(r.mem_refs, 3);
        // A15 overlaps demand misses 3-wide.
        let expect = 3.0 * 20.24 / 3.0;
        assert!((r.stall.as_nanos_f64() - expect).abs() < 0.01);
    }

    #[test]
    fn flash_latency_dominates_store_refs() {
        let mut e = PhaseEngine::with_l2(CoreConfig::a7_1ghz());
        let mut flash = FlashArray::new(FlashConfig::default());
        let mut spec = PhaseSpec::compute("get", 1_000);
        spec.store_refs = vec![0, 100, 200];
        let r = e.run(&spec, &mut flash);
        // 3 flash line reads at 10 us each, no overlap on the A7.
        assert!(r.stall >= Duration::from_micros(30));
    }

    #[test]
    fn uncached_ops_are_fixed_cost() {
        let mut e = PhaseEngine::with_l2(CoreConfig::a15_1p5ghz());
        e.set_uncached_latency(Duration::from_nanos(250));
        let mut mem = dram(10);
        let mut spec = PhaseSpec::compute("mmio", 0);
        spec.uncached_ops = 8;
        let r = e.run(&spec, &mut mem);
        assert_eq!(r.busy, Duration::from_nanos(2000));
    }

    #[test]
    fn l2_residency_shortcut_is_bit_exact() {
        // The shortcut engine and a full-walk engine must agree on every
        // phase result and every cache counter, from cold start through
        // deep steady state, across interleaved phases of very different
        // footprints (including a store phase with refs and a stream).
        let mut fast = PhaseEngine::with_l2(CoreConfig::a7_1ghz());
        let mut slow = PhaseEngine::with_l2(CoreConfig::a7_1ghz());
        slow.disable_l2_residency_shortcut();
        let mut m1 = dram(10);
        let mut m2 = dram(10);
        let mut store_phase = PhaseSpec::compute("store", 5_000);
        store_phase.ifetch_footprint_lines = 1_500;
        store_phase.ifetch_per_kinstr = 10;
        store_phase.kernel_refs = 6;
        store_phase.store_refs = vec![17, 99_000, 4_242];
        store_phase.stream = Some(StreamRef {
            start_line: 200_000,
            lines: 4,
            kind: AccessKind::Read,
        });
        let tiny = PhaseSpec::compute("tiny", 1_400);
        let specs = [net_phase(), tiny, store_phase];
        for i in 0..900 {
            let spec = &specs[i % specs.len()];
            let a = fast.run(spec, &mut m1);
            let b = slow.run(spec, &mut m2);
            assert_eq!(a, b, "phase result diverged at iteration {i}");
            assert_eq!(
                fast.cache_stats(),
                slow.cache_stats(),
                "cache counters diverged at iteration {i}"
            );
        }
        assert!(fast.l2_shortcut_used, "steady state must hit the shortcut");
    }

    #[test]
    fn oversized_footprints_disable_the_shortcut_cold() {
        // Registering more per-set lines than the L2 has ways before the
        // shortcut ever fires must quietly fall back to the full walk.
        let mut e = PhaseEngine::with_l2(CoreConfig::a7_1ghz());
        let mut mem = dram(10);
        // 2048-set L2 with 16 ways holds 6 kernel lines per set; eleven
        // 2048-line regions push the bound past 16.
        let names = [
            "r0", "r1", "r2", "r3", "r4", "r5", "r6", "r7", "r8", "r9", "r10",
        ];
        for name in names {
            let mut spec = PhaseSpec::compute(name, 10_000);
            spec.ifetch_footprint_lines = 2_048;
            spec.ifetch_per_kinstr = 10;
            e.run(&spec, &mut mem);
        }
        // Steady-state reruns still work (slow path), bit-identically to
        // an engine that never had the shortcut.
        let mut plain = PhaseEngine::with_l2(CoreConfig::a7_1ghz());
        plain.disable_l2_residency_shortcut();
        let mut mem2 = dram(10);
        for name in names {
            let mut spec = PhaseSpec::compute(name, 10_000);
            spec.ifetch_footprint_lines = 2_048;
            spec.ifetch_per_kinstr = 10;
            plain.run(&spec, &mut mem2);
        }
        for round in 0..3 {
            for name in names {
                let mut spec = PhaseSpec::compute(name, 10_000);
                spec.ifetch_footprint_lines = 2_048;
                spec.ifetch_per_kinstr = 10;
                let a = e.run(&spec, &mut mem);
                let b = plain.run(&spec, &mut mem2);
                assert_eq!(a, b, "round {round} phase {name}");
            }
        }
        assert!(!e.l2_shortcut_used);
    }

    #[test]
    #[should_panic(expected = "L2 residency bound")]
    fn oversized_footprint_after_shortcut_use_panics() {
        let mut e = PhaseEngine::with_l2(CoreConfig::a7_1ghz());
        let mut mem = dram(10);
        // Warm a normal phase until the shortcut engages...
        for _ in 0..40 {
            e.run(&net_phase(), &mut mem);
        }
        assert!(e.l2_shortcut_used);
        // ...then blow the occupancy bound: the engine must fail loudly
        // rather than let stale LRU order pick eviction victims.
        for i in 0..11 {
            let name: &'static str = [
                "q0", "q1", "q2", "q3", "q4", "q5", "q6", "q7", "q8", "q9", "q10",
            ][i];
            let mut spec = PhaseSpec::compute(name, 10_000);
            spec.ifetch_footprint_lines = 2_048;
            spec.ifetch_per_kinstr = 10;
            e.run(&spec, &mut mem);
        }
    }

    #[test]
    fn replay_reproduces_cursors_and_counters() {
        let mut e = PhaseEngine::with_l2(CoreConfig::a7_1ghz());
        let mut mem = dram(10);
        let spec = net_phase();
        for _ in 0..50 {
            e.run(&spec, &mut mem);
        }
        // Twin engine replays the delta the real engine executes.
        let mut twin = e.clone();
        let before = e.replay_snapshot();
        e.run(&spec, &mut mem);
        let delta = e.replay_delta(&before);
        twin.apply_replay(&delta);
        assert_eq!(twin.replay_snapshot(), e.replay_snapshot());
        // And again from the advanced state, with a second phase mixed in.
        let other = PhaseSpec {
            name: "other",
            ..net_phase()
        };
        e.run(&other, &mut mem);
        twin.run(&other, &mut mem);
        let before = e.replay_snapshot();
        e.run(&spec, &mut mem);
        twin.apply_replay(&e.replay_delta(&before));
        assert_eq!(twin.replay_snapshot(), e.replay_snapshot());
    }

    #[test]
    fn distinct_phases_get_distinct_footprints() {
        let mut e = PhaseEngine::with_l2(CoreConfig::a7_1ghz());
        let mut mem = dram(10);
        let a = PhaseSpec {
            name: "alpha",
            ..net_phase()
        };
        let b = PhaseSpec {
            name: "beta",
            ..net_phase()
        };
        // Warm alpha fully, then run beta: beta must cold-miss.
        for _ in 0..30 {
            e.run(&a, &mut mem);
        }
        let warm_a = e.run(&a, &mut mem);
        let cold_b = e.run(&b, &mut mem);
        assert!(cold_b.mem_refs > warm_a.mem_refs);
    }
}
