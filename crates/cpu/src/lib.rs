//! Core and cache models for the Mercury/Iridium logic die.
//!
//! The paper evaluates two ARM cores on the 3D stack's logic die:
//!
//! * **Cortex-A7** — a small dual-issue in-order core (Table 1: 100 mW,
//!   0.58 mm² at 1 GHz in 28 nm),
//! * **Cortex-A15** — an aggressive out-of-order core (600 mW at 1 GHz,
//!   1 W at 1.5 GHz, 2.82 mm²),
//!
//! each with or without a 2 MB L2 cache (§6.2 studies the L2's effect at
//! every memory latency).
//!
//! This crate provides:
//!
//! * [`cache`] — a true-LRU set-associative cache simulator used for the
//!   L1I/L1D/L2 hierarchy,
//! * [`core`] — the core configurations (frequency, effective IPC,
//!   memory-level parallelism, power/area from Table 1),
//! * [`engine`] — the phase timing engine: it executes a request phase's
//!   reference stream (instruction fetches, kernel-structure references,
//!   store/value references) against the cache hierarchy and a
//!   [`densekv_mem::MemoryTiming`] device, returning the phase's time.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod core;
pub mod engine;

pub use crate::core::{CoreConfig, CoreKind};
pub use cache::{Cache, CacheConfig};
pub use engine::{CacheHierarchyStats, CacheLevelStats, PhaseEngine, PhaseResult, PhaseSpec};
