//! Helios: a hybrid memory stack with a DRAM tier caching flash pages.
//!
//! The paper frames Mercury (3D DRAM: fast, 4 GB) and Iridium (p-BiCS
//! NAND: dense at 19.8 GB, but 10–20 µs reads) as an either/or. Helios
//! is the unexplored point between them: a thin slice of the Mercury
//! DRAM stack (64 MB–1 GB) bonded above the full Iridium flash array,
//! acting as a page-granular cache. The hot set is served at DRAM
//! latency; the cold tail spills to flash, and a miss amortizes one page
//! fetch over all 128 lines of the page instead of paying a flash read
//! per line the way Iridium does.
//!
//! [`HybridMemory`] implements [`MemoryTiming`], so it drops into the
//! CPU phase engine unchanged. The tier is configurable in capacity,
//! organization (set-associative or object-granular LRU), and admission
//! policy, and its hit rate falls out of the simulated reference stream
//! — there is no hit-rate dial. Dirty pages are written back through an
//! FTL-aware write buffer that coalesces repeat programs of the same
//! logical page, so garbage-collection pressure shows up on the
//! [`Ftl`]'s lifetime counters exactly as host PUT traffic does.
//!
//! Two degenerate limits anchor the model (and are pinned by property
//! tests): a 0-byte tier reproduces Iridium's timing bit-identically,
//! and a tier larger than the working set serves every re-reference at
//! Mercury's exact line latency.
//!
//! Per-tier byte accounting ([`HybridMemory::dram_bytes`] /
//! [`HybridMemory::flash_bytes`]) lets the power model price the two
//! tiers at their separate Table-1 rates: DRAM 210 mW/(GB/s), flash
//! 6 mW/(GB/s).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};

use densekv_mem::flash::FlashConfig;
use densekv_mem::ftl::Ftl;
use densekv_mem::{AccessKind, MemoryTiming, LINE_BYTES};
use densekv_sim::Duration;

/// How the DRAM tier maps flash pages onto its frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TierOrganization {
    /// Classic set-associative cache of flash pages: `ways` frames per
    /// set, LRU within the set. Conflict misses are possible below full
    /// occupancy, as in a real tag-limited DRAM cache.
    SetAssociative {
        /// Frames per set (must be ≥ 1).
        ways: u32,
    },
    /// Fully-associative, object-granular LRU over whole pages — the
    /// software-managed organization a KV cache would run, with a global
    /// recency order and no conflict misses.
    ObjectLru,
}

/// When a missing page is admitted into the DRAM tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Every miss installs the page (classic cache fill).
    Always,
    /// A page is installed only on its second touch within a sliding
    /// window of recent miss lpns — filters single-use streams out of
    /// the tier so scans cannot flush the hot set.
    SecondTouch {
        /// Number of recent miss lpns remembered.
        window: u32,
    },
}

/// Geometry, timing, and policy of a Helios hybrid stack.
#[derive(Debug, Clone, PartialEq)]
pub struct HybridConfig {
    /// DRAM tier capacity in bytes (0 disables the tier: pure Iridium).
    pub dram_tier_bytes: u64,
    /// Page-frame organization of the tier.
    pub organization: TierOrganization,
    /// Admission policy for missing pages.
    pub admission: AdmissionPolicy,
    /// Independent DRAM ports bonded to the logic die (Mercury: 16).
    pub dram_ports: u32,
    /// DRAM array access latency (Mercury's closed-page 10 ns).
    pub dram_hit_latency: Duration,
    /// Sustained bandwidth per DRAM port, GB/s (Mercury: 6.25).
    pub dram_port_bandwidth_gbps: f64,
    /// DRAM active power per GB/s, milliwatts (Table 1: 210).
    pub dram_active_mw_per_gbps: f64,
    /// Dirty pages buffered before the write buffer flushes to the FTL.
    pub writeback_pages: u32,
    /// The flash array behind the tier (Iridium geometry).
    pub flash: FlashConfig,
    /// FTL over-provisioning fraction.
    pub overprovision: f64,
}

impl HybridConfig {
    /// The Helios design point: a `dram_tier_bytes` slice of Mercury's
    /// Tezzaron DRAM (16 ports, 6.25 GB/s each, 10 ns closed-page) over
    /// the full Iridium flash array at the given read latency.
    pub fn helios(dram_tier_bytes: u64, flash_read_latency: Duration) -> Self {
        HybridConfig {
            dram_tier_bytes,
            organization: TierOrganization::ObjectLru,
            admission: AdmissionPolicy::Always,
            dram_ports: 16,
            dram_hit_latency: Duration::from_nanos(10),
            dram_port_bandwidth_gbps: 6.25,
            dram_active_mw_per_gbps: 210.0,
            writeback_pages: 16,
            flash: FlashConfig::iridium(flash_read_latency),
            overprovision: 1.0 / 16.0,
        }
    }

    /// Number of whole flash pages the DRAM tier can hold.
    #[must_use]
    pub fn capacity_pages(&self) -> u64 {
        self.dram_tier_bytes / self.flash.page_bytes
    }

    /// Time to move one 64 B line over a DRAM port.
    #[must_use]
    pub fn dram_line_transfer(&self) -> Duration {
        Duration::from_nanos_f64(LINE_BYTES as f64 / self.dram_port_bandwidth_gbps)
    }

    /// Latency of a tier hit: array access plus one line transfer —
    /// identical to Mercury's closed-page `line_access`.
    #[must_use]
    pub fn dram_line_latency(&self) -> Duration {
        self.dram_hit_latency + self.dram_line_transfer()
    }

    /// Time to stream one whole flash page over a DRAM port.
    #[must_use]
    pub fn dram_page_latency(&self) -> Duration {
        self.dram_hit_latency
            + Duration::from_nanos_f64(self.flash.page_bytes as f64 / self.dram_port_bandwidth_gbps)
    }
}

impl Default for HybridConfig {
    fn default() -> Self {
        HybridConfig::helios(256 << 20, Duration::from_micros(10))
    }
}

/// A point-in-time copy of the tier's counters, for telemetry gauges
/// and experiment reporting.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TierSnapshot {
    /// Line accesses served from the DRAM tier.
    pub hits: u64,
    /// Line accesses that missed the tier.
    pub misses: u64,
    /// Bytes moved through the DRAM tier (hits, fills, dirty read-outs).
    pub dram_bytes: u64,
    /// Bytes moved through the flash array (fills, misses, programs).
    pub flash_bytes: u64,
    /// Pages currently resident in the tier.
    pub resident_pages: u64,
    /// Total page frames in the tier.
    pub capacity_pages: u64,
    /// Dirty pages actually programmed through the FTL.
    pub writebacks_flushed: u64,
    /// Programs saved by write-buffer coalescing (same lpn re-dirtied
    /// before the buffer flushed).
    pub programs_coalesced: u64,
    /// FTL lifetime host page writes.
    pub host_writes: u64,
    /// FTL lifetime device page programs (host + GC relocations).
    pub device_programs: u64,
    /// FTL lifetime GC page relocations.
    pub gc_moved_pages: u64,
    /// FTL lifetime block erases.
    pub gc_erased_blocks: u64,
}

impl TierSnapshot {
    /// Fraction of line accesses served from DRAM (0 when idle).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One resident page frame.
#[derive(Debug, Clone, Copy)]
struct Frame {
    lpn: u64,
    dirty: bool,
}

/// The DRAM tier's frame directory, in either organization.
#[derive(Debug, Clone)]
enum Frames {
    SetAssociative {
        /// Per-set frames, most-recently-used first.
        sets: Vec<Vec<Frame>>,
        ways: usize,
    },
    ObjectLru {
        /// lpn -> (recency tick, dirty).
        entries: HashMap<u64, (u64, bool)>,
        /// recency tick -> lpn, oldest first.
        order: BTreeMap<u64, u64>,
        tick: u64,
    },
}

#[derive(Debug, Clone)]
struct DramTier {
    frames: Frames,
    capacity_pages: u64,
    resident: u64,
}

impl DramTier {
    fn new(config: &HybridConfig) -> Self {
        let capacity = config.capacity_pages();
        let frames = match config.organization {
            TierOrganization::SetAssociative { ways } => {
                let ways = ways.max(1) as usize;
                let sets = ((capacity / ways as u64).max(1)) as usize;
                Frames::SetAssociative {
                    sets: vec![Vec::new(); sets],
                    ways,
                }
            }
            TierOrganization::ObjectLru => Frames::ObjectLru {
                entries: HashMap::new(),
                order: BTreeMap::new(),
                tick: 0,
            },
        };
        DramTier {
            frames,
            capacity_pages: capacity,
            resident: 0,
        }
    }

    /// Looks up `lpn`; on a hit updates recency (and dirtiness if
    /// `dirty`) and returns true.
    fn touch(&mut self, lpn: u64, dirty: bool) -> bool {
        if self.capacity_pages == 0 {
            return false;
        }
        match &mut self.frames {
            Frames::SetAssociative { sets, .. } => {
                let nsets = sets.len() as u64;
                let set = &mut sets[(lpn % nsets) as usize];
                match set.iter().position(|f| f.lpn == lpn) {
                    Some(pos) => {
                        let mut frame = set.remove(pos);
                        frame.dirty |= dirty;
                        set.insert(0, frame);
                        true
                    }
                    None => false,
                }
            }
            Frames::ObjectLru {
                entries,
                order,
                tick,
            } => match entries.get_mut(&lpn) {
                Some((at, d)) => {
                    order.remove(at);
                    *tick += 1;
                    *at = *tick;
                    *d |= dirty;
                    order.insert(*tick, lpn);
                    true
                }
                None => false,
            },
        }
    }

    /// Installs `lpn` (caller guarantees it is absent), evicting the LRU
    /// frame of its set (or of the whole tier) if full. Returns the
    /// evicted frame, if any.
    fn install(&mut self, lpn: u64, dirty: bool) -> Option<Frame> {
        debug_assert!(self.capacity_pages > 0);
        let evicted = match &mut self.frames {
            Frames::SetAssociative { sets, ways } => {
                let nsets = sets.len() as u64;
                let set = &mut sets[(lpn % nsets) as usize];
                let evicted = if set.len() == *ways { set.pop() } else { None };
                set.insert(0, Frame { lpn, dirty });
                evicted
            }
            Frames::ObjectLru {
                entries,
                order,
                tick,
            } => {
                let evicted = if entries.len() as u64 == self.capacity_pages {
                    let (_, victim) = order.pop_first().expect("tier is non-empty");
                    let (_, d) = entries.remove(&victim).expect("ordered lpn is resident");
                    Some(Frame {
                        lpn: victim,
                        dirty: d,
                    })
                } else {
                    None
                };
                *tick += 1;
                entries.insert(lpn, (*tick, dirty));
                order.insert(*tick, lpn);
                evicted
            }
        };
        self.resident += 1 - u64::from(evicted.is_some());
        evicted
    }
}

/// A Helios hybrid memory: a DRAM page-cache tier over an FTL-managed
/// flash array, presenting [`MemoryTiming`] to the core model.
///
/// # Examples
///
/// ```
/// use densekv_hybrid::{HybridConfig, HybridMemory};
/// use densekv_mem::{AccessKind, MemoryTiming};
/// use densekv_sim::Duration;
///
/// let config = HybridConfig::helios(64 << 20, Duration::from_micros(10));
/// let mut mem = HybridMemory::new(config);
/// let miss = mem.line_access(0, AccessKind::Read); // page fill from flash
/// let hit = mem.line_access(1, AccessKind::Read); // same page: DRAM
/// assert!(hit < miss);
/// assert_eq!(hit, Duration::from_ps(20_240)); // Mercury's line latency
/// ```
#[derive(Debug, Clone)]
pub struct HybridMemory {
    config: HybridConfig,
    ftl: Ftl,
    tier: DramTier,
    /// Dirty lpns awaiting flush, in eviction order.
    writeback: VecDeque<u64>,
    /// Mirror of `writeback` membership for O(1) coalescing.
    writeback_set: HashSet<u64>,
    /// Recent miss lpns for `AdmissionPolicy::SecondTouch`.
    recent_misses: VecDeque<u64>,
    recent_set: HashSet<u64>,
    hits: u64,
    misses: u64,
    dram_bytes: u64,
    writebacks_flushed: u64,
    programs_coalesced: u64,
}

impl HybridMemory {
    /// Builds the tier, the FTL, and the flash array from `config`.
    pub fn new(config: HybridConfig) -> Self {
        let ftl = Ftl::new(config.flash.clone(), config.overprovision);
        let tier = DramTier::new(&config);
        HybridMemory {
            ftl,
            tier,
            writeback: VecDeque::new(),
            writeback_set: HashSet::new(),
            recent_misses: VecDeque::new(),
            recent_set: HashSet::new(),
            hits: 0,
            misses: 0,
            dram_bytes: 0,
            writebacks_flushed: 0,
            programs_coalesced: 0,
            config,
        }
    }

    /// The stack configuration.
    #[must_use]
    pub fn config(&self) -> &HybridConfig {
        &self.config
    }

    /// The FTL behind the tier (lifetime GC/wear counters).
    #[must_use]
    pub fn ftl(&self) -> &Ftl {
        &self.ftl
    }

    /// Line accesses served from the DRAM tier.
    #[must_use]
    pub fn tier_hits(&self) -> u64 {
        self.hits
    }

    /// Line accesses that missed the DRAM tier.
    #[must_use]
    pub fn tier_misses(&self) -> u64 {
        self.misses
    }

    /// Bytes moved through the DRAM tier since the last counter reset.
    #[must_use]
    pub fn dram_bytes(&self) -> u64 {
        self.dram_bytes
    }

    /// Bytes moved through the flash array since the last counter reset.
    #[must_use]
    pub fn flash_bytes(&self) -> u64 {
        self.ftl.flash().bytes_moved()
    }

    /// Pages currently resident in the tier.
    #[must_use]
    pub fn resident_pages(&self) -> u64 {
        self.tier.resident
    }

    /// Dirty pages programmed through the FTL so far.
    #[must_use]
    pub fn writebacks_flushed(&self) -> u64 {
        self.writebacks_flushed
    }

    /// Programs saved by write-buffer coalescing so far.
    #[must_use]
    pub fn programs_coalesced(&self) -> u64 {
        self.programs_coalesced
    }

    /// Copies every counter into a [`TierSnapshot`].
    #[must_use]
    pub fn snapshot(&self) -> TierSnapshot {
        TierSnapshot {
            hits: self.hits,
            misses: self.misses,
            dram_bytes: self.dram_bytes,
            flash_bytes: self.flash_bytes(),
            resident_pages: self.tier.resident,
            capacity_pages: self.tier.capacity_pages,
            writebacks_flushed: self.writebacks_flushed,
            programs_coalesced: self.programs_coalesced,
            host_writes: self.ftl.host_writes(),
            device_programs: self.ftl.device_programs(),
            gc_moved_pages: self.ftl.gc_moved_pages(),
            gc_erased_blocks: self.ftl.gc_erased_blocks(),
        }
    }

    /// The logical flash page holding a line address (64 B units),
    /// wrapped modulo the FTL's exported capacity.
    fn lpn_of_line(&self, line_addr: u64) -> u64 {
        let byte = line_addr as u128 * LINE_BYTES as u128;
        let lpn = byte / self.config.flash.page_bytes as u128;
        (lpn % self.ftl.exported_pages() as u128) as u64
    }

    /// Consults (and updates) the admission filter for a missing page.
    fn admit(&mut self, lpn: u64) -> bool {
        match self.config.admission {
            AdmissionPolicy::Always => true,
            AdmissionPolicy::SecondTouch { window } => {
                if self.recent_set.contains(&lpn) {
                    return true;
                }
                self.recent_misses.push_back(lpn);
                self.recent_set.insert(lpn);
                while self.recent_misses.len() > window.max(1) as usize {
                    let old = self.recent_misses.pop_front().expect("non-empty");
                    self.recent_set.remove(&old);
                }
                false
            }
        }
    }

    /// Installs a page into the tier, routing any dirty victim through
    /// the write buffer. Returns the flush latency incurred (usually
    /// zero; a full buffer drains synchronously, modeling the
    /// writeback stall).
    fn install(&mut self, lpn: u64, dirty: bool) -> Duration {
        let mut latency = Duration::ZERO;
        if let Some(victim) = self.tier.install(lpn, dirty) {
            if victim.dirty {
                // Reading the page out of DRAM to stage it for flash.
                self.dram_bytes += self.config.flash.page_bytes;
                latency += self.buffer_writeback(victim.lpn);
            }
        }
        latency
    }

    /// Queues one dirty page for writeback, coalescing repeats, and
    /// flushes the buffer once it reaches capacity.
    fn buffer_writeback(&mut self, lpn: u64) -> Duration {
        if !self.writeback_set.insert(lpn) {
            self.programs_coalesced += 1;
            return Duration::ZERO;
        }
        self.writeback.push_back(lpn);
        if self.writeback.len() >= self.config.writeback_pages.max(1) as usize {
            self.drain_writeback()
        } else {
            Duration::ZERO
        }
    }

    /// Flushes every buffered dirty page through the FTL (garbage
    /// collection included), returning the summed device time.
    pub fn drain_writeback(&mut self) -> Duration {
        let mut latency = Duration::ZERO;
        while let Some(lpn) = self.writeback.pop_front() {
            self.writeback_set.remove(&lpn);
            latency += self
                .ftl
                .write(lpn)
                .expect("writeback lpns are within exported capacity")
                .latency;
            self.writebacks_flushed += 1;
        }
        latency
    }

    /// Writes the value bytes at logical byte `offset` — the bulk PUT
    /// path. With the tier disabled this is exactly
    /// [`Ftl::write_range`]; otherwise the covering pages are installed
    /// dirty at DRAM speed (a full-page overwrite needs no flash fill)
    /// and reach flash later through the write buffer.
    pub fn value_write(&mut self, offset: u64, bytes: u64) -> Duration {
        if self.tier.capacity_pages == 0 {
            return self.ftl.write_range(offset, bytes);
        }
        let page = self.config.flash.page_bytes;
        let first = offset / page;
        let last = (offset + bytes.max(1) - 1) / page;
        let mut latency = Duration::ZERO;
        for raw in first..=last {
            let lpn = raw % self.ftl.exported_pages();
            if self.tier.touch(lpn, true) {
                self.hits += 1;
            } else {
                self.misses += 1;
                latency += self.install(lpn, true);
            }
            self.dram_bytes += page;
            latency += self.config.dram_page_latency();
        }
        latency
    }
}

impl MemoryTiming for HybridMemory {
    fn line_access(&mut self, line_addr: u64, kind: AccessKind) -> Duration {
        if self.tier.capacity_pages == 0 {
            return self.ftl.line_access(line_addr, kind);
        }
        let lpn = self.lpn_of_line(line_addr);
        if self.tier.touch(lpn, kind == AccessKind::Write) {
            self.hits += 1;
            self.dram_bytes += LINE_BYTES;
            return self.config.dram_line_latency();
        }
        self.misses += 1;
        if !self.admit(lpn) {
            // Bypass: one line straight off the flash array, Iridium
            // style (the array counts the line's bytes).
            return self.ftl.line_access(line_addr, kind);
        }
        // Fill the whole page from flash (write-allocate on stores: the
        // line lands in the filled page, which becomes dirty).
        let fill = self.ftl.read_page_any(lpn);
        let stall = self.install(lpn, kind == AccessKind::Write);
        self.dram_bytes += self.config.flash.page_bytes;
        fill + stall + self.config.dram_line_latency()
    }

    fn bytes_moved(&self) -> u64 {
        self.dram_bytes + self.ftl.flash().bytes_moved()
    }

    fn reset_counters(&mut self) {
        self.dram_bytes = 0;
        self.ftl.reset_counters();
    }

    fn active_power_w(&self, gb_per_s: f64) -> f64 {
        // Headline single-rate figure prices traffic at the DRAM rate;
        // per-tier pricing splits by dram_bytes()/flash_bytes().
        self.config.dram_active_mw_per_gbps * gb_per_s / 1000.0
    }

    fn max_overlap(&self, kind: AccessKind) -> f64 {
        // The flash array sits in the miss path, so the stack inherits
        // its one-command-in-flight model (conservative for pure-hit
        // streams).
        self.ftl.max_overlap(kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use densekv_mem::dram::{DramConfig, DramStack};
    use densekv_sim::SplitMix64;

    /// A small flash geometry so tests run fast and GC triggers early.
    fn tiny_flash() -> FlashConfig {
        FlashConfig {
            planes: 2,
            page_bytes: 8 << 10,
            pages_per_block: 4,
            blocks_per_plane: 16,
            read_latency: Duration::from_micros(10),
            program_latency: Duration::from_micros(200),
            erase_latency: Duration::from_millis(2),
            controller_overhead: Duration::from_micros(15),
            active_mw_per_gbps: 6.0,
        }
    }

    fn tiny_helios(dram_tier_bytes: u64) -> HybridConfig {
        HybridConfig {
            dram_tier_bytes,
            flash: tiny_flash(),
            overprovision: 0.25,
            ..HybridConfig::helios(dram_tier_bytes, Duration::from_micros(10))
        }
    }

    #[test]
    fn zero_byte_tier_is_bit_identical_to_iridium() {
        let mut hybrid = HybridMemory::new(tiny_helios(0));
        let mut ftl = Ftl::new(tiny_flash(), 0.25);
        for (addr, kind) in [
            (0u64, AccessKind::Read),
            (7, AccessKind::Write),
            (1_000_000, AccessKind::Read),
            (3, AccessKind::Write),
        ] {
            assert_eq!(hybrid.line_access(addr, kind), ftl.line_access(addr, kind));
        }
        assert_eq!(hybrid.bytes_moved(), ftl.bytes_moved());
        assert_eq!(
            hybrid.value_write(12_345, 20_000),
            ftl.write_range(12_345, 20_000)
        );
        assert_eq!(hybrid.max_overlap(AccessKind::Read), 1.0);
        assert_eq!(hybrid.resident_pages(), 0);
    }

    #[test]
    fn oversized_tier_re_references_hit_at_mercury_latency() {
        let mut hybrid = HybridMemory::new(tiny_helios(64 << 20));
        let mut mercury = DramStack::new(DramConfig::mercury(Duration::from_nanos(10)));
        let addrs = [0u64, 9, 250, 4096, 77_777];
        for &a in &addrs {
            hybrid.line_access(a, AccessKind::Read); // cold fill
        }
        for &a in &addrs {
            assert_eq!(
                hybrid.line_access(a, AccessKind::Read),
                mercury.line_access(a, AccessKind::Read),
                "re-reference of line {a} should cost exactly one Mercury access"
            );
        }
    }

    #[test]
    fn miss_amortizes_page_fill_across_lines() {
        let mut hybrid = HybridMemory::new(tiny_helios(64 << 20));
        let lines_per_page = tiny_flash().page_bytes / LINE_BYTES;
        let miss = hybrid.line_access(0, AccessKind::Read);
        let mut total = miss;
        for line in 1..lines_per_page {
            total += hybrid.line_access(line, AccessKind::Read);
        }
        // Iridium pays a full flash read per line; Helios pays one fill
        // plus DRAM hits, far cheaper over a whole page.
        let mut iridium = Ftl::new(tiny_flash(), 0.25);
        let mut iridium_total = Duration::ZERO;
        for line in 0..lines_per_page {
            iridium_total += iridium.line_access(line, AccessKind::Read);
        }
        assert!(total * 10 < iridium_total, "{total:?} vs {iridium_total:?}");
        assert_eq!(hybrid.tier_hits(), lines_per_page - 1);
        assert_eq!(hybrid.tier_misses(), 1);
    }

    #[test]
    fn per_tier_byte_accounting_separates_dram_and_flash() {
        let mut hybrid = HybridMemory::new(tiny_helios(64 << 20));
        let page = tiny_flash().page_bytes;
        hybrid.line_access(0, AccessKind::Read); // fill: page off flash, page into DRAM
        hybrid.line_access(1, AccessKind::Read); // hit: one line in DRAM
        assert_eq!(hybrid.flash_bytes(), page);
        assert_eq!(hybrid.dram_bytes(), page + LINE_BYTES);
        assert_eq!(hybrid.bytes_moved(), 2 * page + LINE_BYTES);
        hybrid.reset_counters();
        assert_eq!(hybrid.bytes_moved(), 0);
    }

    #[test]
    fn dirty_evictions_reach_flash_through_coalescing_write_buffer() {
        // One-page tier, small buffer: alternating dirty pages force
        // evictions; re-dirtying a buffered page coalesces.
        let mut config = tiny_helios(8 << 10);
        config.writeback_pages = 4;
        let page = config.flash.page_bytes;
        let mut hybrid = HybridMemory::new(config);
        assert_eq!(hybrid.config().capacity_pages(), 1);
        for i in 0..12u64 {
            hybrid.value_write((i % 2) * page, 64);
        }
        assert!(
            hybrid.programs_coalesced() > 0,
            "repeat dirty evictions coalesce"
        );
        let _ = hybrid.drain_writeback();
        assert!(hybrid.writebacks_flushed() > 0);
        let snap = hybrid.snapshot();
        assert_eq!(snap.host_writes, hybrid.writebacks_flushed());
        assert_eq!(
            snap.writebacks_flushed + snap.programs_coalesced,
            11,
            "every dirty eviction is either flushed or coalesced"
        );
    }

    #[test]
    fn gc_pressure_shows_on_lifetime_counters() {
        let mut config = tiny_helios(8 << 10);
        config.writeback_pages = 1; // flush every eviction
        let page = config.flash.page_bytes;
        let mut hybrid = HybridMemory::new(config);
        let pages = hybrid.ftl().exported_pages();
        for i in 0..2_000u64 {
            hybrid.value_write((i % pages) * page, 64);
        }
        let _ = hybrid.drain_writeback();
        let snap = hybrid.snapshot();
        assert!(
            snap.gc_erased_blocks > 0,
            "sustained writeback must trigger GC"
        );
        assert!(snap.device_programs >= snap.host_writes);
    }

    #[test]
    fn hit_rate_tracks_reference_skew() {
        // Same tier, same number of distinct pages, two streams: the
        // more skewed one must earn a higher hit rate. No dials.
        let run = |exponent: u32| {
            let mut hybrid = HybridMemory::new(tiny_helios(4 * (8 << 10)));
            let lines_per_page = tiny_flash().page_bytes / LINE_BYTES;
            let population = 64u64; // pages; tier holds 4
            let mut rng = SplitMix64::new(0x5EED);
            for _ in 0..20_000 {
                let mut u = rng.next_u64() % population;
                for _ in 0..exponent {
                    u = u.min(rng.next_u64() % population);
                }
                hybrid.line_access(u * lines_per_page, AccessKind::Read);
            }
            hybrid.snapshot().hit_rate()
        };
        let uniform = run(0);
        let skewed = run(3);
        assert!(
            skewed > 2.0 * uniform,
            "skewed {skewed:.3} should beat uniform {uniform:.3}"
        );
    }

    #[test]
    fn set_associative_organization_conflicts_below_capacity() {
        let mut config = tiny_helios(8 * (8 << 10));
        config.organization = TierOrganization::SetAssociative { ways: 2 };
        let page = config.flash.page_bytes;
        let lines_per_page = page / LINE_BYTES;
        let mut hybrid = HybridMemory::new(config);
        // Three pages mapping to the same set (stride = set count): with
        // 2 ways they thrash even though 8 frames exist.
        let sets = 4u64; // 8 pages / 2 ways
        for _ in 0..4 {
            for p in [0, sets, 2 * sets] {
                hybrid.line_access(p * lines_per_page, AccessKind::Read);
            }
        }
        assert_eq!(
            hybrid.tier_hits(),
            0,
            "2-way set thrashes on 3-way conflict"
        );
        // The LRU organization holds all three.
        let mut lru = HybridMemory::new(tiny_helios(8 * (8 << 10)));
        for _ in 0..4 {
            for p in [0, sets, 2 * sets] {
                lru.line_access(p * lines_per_page, AccessKind::Read);
            }
        }
        assert_eq!(lru.tier_misses(), 3, "LRU keeps the working set resident");
    }

    #[test]
    fn second_touch_admission_filters_single_use_streams() {
        let mut config = tiny_helios(4 * (8 << 10));
        config.admission = AdmissionPolicy::SecondTouch { window: 32 };
        let lines_per_page = config.flash.page_bytes / LINE_BYTES;
        let mut hybrid = HybridMemory::new(config);
        // A pure scan never installs anything.
        for p in 0..16u64 {
            hybrid.line_access(p * lines_per_page, AccessKind::Read);
        }
        assert_eq!(hybrid.resident_pages(), 0);
        // A second pass within the window installs.
        for p in 0..4u64 {
            hybrid.line_access(p * lines_per_page, AccessKind::Read);
        }
        assert_eq!(hybrid.resident_pages(), 4);
        // Third pass hits in DRAM.
        for p in 0..4u64 {
            hybrid.line_access(p * lines_per_page, AccessKind::Read);
        }
        assert_eq!(hybrid.tier_hits(), 4);
    }

    #[test]
    fn helios_defaults_mirror_mercury_and_iridium_parts() {
        let config = HybridConfig::helios(256 << 20, Duration::from_micros(10));
        assert_eq!(config.dram_ports, 16);
        assert_eq!(config.dram_line_latency(), Duration::from_ps(20_240));
        assert_eq!(
            config.flash,
            FlashConfig::iridium(Duration::from_micros(10))
        );
        assert_eq!(config.capacity_pages(), (256 << 20) / (8 << 10));
    }
}
