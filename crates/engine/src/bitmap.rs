//! Multi-level allocation bitmaps, bricksKV-style.
//!
//! One leaf bit per page (set = allocated). Each upper-level bit
//! summarizes 8 bits of the level below — set exactly when all 8
//! children are set — so "is there a free page?" is answered at the
//! top in O(1) and *which* page by a top-down scan that touches one
//! byte per level: O(log₈ pages) instead of a linear sweep. Groups are
//! byte-aligned, so a summary check is a single byte compare.
//!
//! Padding bits past the real capacity are held permanently set at
//! every level; the scan therefore never descends into pages that do
//! not exist, with no boundary special-casing.

/// Words needed to hold `bits` bits.
fn word_count(bits: u64) -> usize {
    bits.div_ceil(64) as usize
}

fn get_bit(words: &[u64], idx: u64) -> bool {
    words[(idx / 64) as usize] >> (idx % 64) & 1 == 1
}

fn set_bit(words: &mut [u64], idx: u64) {
    words[(idx / 64) as usize] |= 1 << (idx % 64);
}

fn clear_bit(words: &mut [u64], idx: u64) {
    words[(idx / 64) as usize] &= !(1 << (idx % 64));
}

/// The 8-bit child group summarized by bit `group` one level up.
fn byte_of(words: &[u64], group: u64) -> u8 {
    (words[(group / 8) as usize] >> ((group % 8) * 8)) as u8
}

/// Sets every padding bit in `[real_bits, words * 64)`.
fn set_padding(words: &mut [u64], real_bits: u64) {
    let total = words.len() as u64 * 64;
    for idx in real_bits..total {
        set_bit(words, idx);
    }
}

/// A grow-only multi-level bitmap over `capacity` leaf bits.
///
/// # Examples
///
/// ```
/// use densekv_engine::MultiLevelBitmap;
///
/// let mut bm = MultiLevelBitmap::new(100);
/// let page = bm.find_free().expect("empty bitmap has room");
/// bm.set(page);
/// assert_eq!(bm.used(), 1);
/// bm.clear(page);
/// assert_eq!(bm.used(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct MultiLevelBitmap {
    /// `levels[0]` holds the leaves; `levels[k]` bit `j` summarizes
    /// bits `8j..8j+8` of `levels[k - 1]`. The top level is one bit.
    levels: Vec<Vec<u64>>,
    /// Real bits per level (the rest of each word array is padding).
    level_bits: Vec<u64>,
    used: u64,
}

impl MultiLevelBitmap {
    /// An empty bitmap over `capacity` leaf bits (0 is allowed: a tier
    /// that has not allocated its first extent yet).
    #[must_use]
    pub fn new(capacity: u64) -> Self {
        let mut bm = MultiLevelBitmap {
            levels: Vec::new(),
            level_bits: Vec::new(),
            used: 0,
        };
        bm.grow(capacity);
        bm
    }

    /// Leaf bits.
    #[must_use]
    pub fn capacity(&self) -> u64 {
        self.level_bits.first().copied().unwrap_or(0)
    }

    /// Leaf bits currently set.
    #[must_use]
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Number of summary levels above the leaves.
    #[must_use]
    pub fn level_count(&self) -> usize {
        self.levels.len()
    }

    /// True when every leaf bit is set.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.used == self.capacity()
    }

    /// Top-down scan for the lowest-index free leaf bit.
    #[must_use]
    pub fn find_free(&self) -> Option<u64> {
        if self.levels.is_empty() {
            return None;
        }
        // The top level is a single bit: set means everything below
        // (padding included) is full.
        if get_bit(self.levels.last().expect("nonempty"), 0) {
            return None;
        }
        let mut j = 0u64;
        for level in self.levels[..self.levels.len() - 1].iter().rev() {
            let group = byte_of(level, j);
            let free = (!group).trailing_zeros() as u64;
            debug_assert!(free < 8, "clear summary bit implies a free child");
            j = j * 8 + free;
        }
        Some(j)
    }

    /// Marks leaf `idx` allocated, propagating full-group summaries up.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `idx` is out of range or already set.
    pub fn set(&mut self, idx: u64) {
        debug_assert!(idx < self.capacity(), "leaf {idx} out of range");
        debug_assert!(!get_bit(&self.levels[0], idx), "leaf {idx} already set");
        set_bit(&mut self.levels[0], idx);
        self.used += 1;
        let mut j = idx;
        for k in 1..self.levels.len() {
            let group = j / 8;
            if byte_of(&self.levels[k - 1], group) != 0xFF {
                break;
            }
            set_bit(&mut self.levels[k], group);
            j = group;
        }
    }

    /// Marks leaf `idx` free, clearing now-stale summaries up the tree.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `idx` is out of range or already clear.
    pub fn clear(&mut self, idx: u64) {
        debug_assert!(idx < self.capacity(), "leaf {idx} out of range");
        debug_assert!(get_bit(&self.levels[0], idx), "leaf {idx} already clear");
        clear_bit(&mut self.levels[0], idx);
        self.used -= 1;
        let mut j = idx;
        for k in 1..self.levels.len() {
            let group = j / 8;
            if !get_bit(&self.levels[k], group) {
                break;
            }
            clear_bit(&mut self.levels[k], group);
            j = group;
        }
    }

    /// Extends the leaf level to `new_capacity` bits (no-op when not
    /// larger) and rebuilds the summary levels. Tiers grow their page
    /// count geometrically, so the linear rebuild amortizes.
    pub fn grow(&mut self, new_capacity: u64) {
        if new_capacity <= self.capacity() {
            return;
        }
        let old_capacity = self.capacity();
        if self.levels.is_empty() {
            self.levels.push(Vec::new());
            self.level_bits.push(0);
        }
        let leaves = &mut self.levels[0];
        let old_total = leaves.len() as u64 * 64;
        leaves.resize(word_count(new_capacity), 0);
        // Old padding bits now inside the capacity become free leaves.
        for idx in old_capacity..old_total.min(new_capacity) {
            clear_bit(leaves, idx);
        }
        set_padding(leaves, new_capacity);
        self.level_bits[0] = new_capacity;
        self.rebuild_upper();
    }

    /// Recomputes every summary level from the leaves.
    fn rebuild_upper(&mut self) {
        self.levels.truncate(1);
        self.level_bits.truncate(1);
        let mut bits = self.level_bits[0];
        while bits > 1 {
            let child_bits = bits;
            bits = child_bits.div_ceil(8);
            let child = self.levels.last().expect("child level exists");
            let mut level = vec![0u64; word_count(bits)];
            for j in 0..bits {
                if byte_of(child, j) == 0xFF {
                    set_bit(&mut level, j);
                }
            }
            set_padding(&mut level, bits);
            self.levels.push(level);
            self.level_bits.push(bits);
        }
    }

    /// Verifies the structural invariants the proptests rely on: every
    /// upper level exactly summarizes the one below, padding bits are
    /// all set, and `used` matches the real leaf popcount.
    ///
    /// # Errors
    ///
    /// A description of the first violated invariant.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.levels.is_empty() {
            return if self.used == 0 {
                Ok(())
            } else {
                Err("empty bitmap with nonzero used count".into())
            };
        }
        for (k, level) in self.levels.iter().enumerate() {
            let bits = self.level_bits[k];
            for idx in bits..level.len() as u64 * 64 {
                if !get_bit(level, idx) {
                    return Err(format!("level {k}: padding bit {idx} is clear"));
                }
            }
            if k == 0 {
                continue;
            }
            let child = &self.levels[k - 1];
            for j in 0..bits {
                let expect = byte_of(child, j) == 0xFF;
                if get_bit(level, j) != expect {
                    return Err(format!(
                        "level {k} bit {j} = {}, but its child group is {}",
                        get_bit(level, j),
                        if expect { "full" } else { "not full" },
                    ));
                }
            }
        }
        let leaves = &self.levels[0];
        let pad = leaves.len() as u64 * 64 - self.level_bits[0];
        let set: u64 = leaves.iter().map(|w| u64::from(w.count_ones())).sum();
        if set - pad != self.used {
            return Err(format!(
                "used = {} but {} real leaf bits are set",
                self.used,
                set - pad
            ));
        }
        if *self.level_bits.last().expect("nonempty") != 1 && self.level_bits.len() > 1 {
            return Err("top level is not a single bit".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_zero_capacity() {
        let bm = MultiLevelBitmap::new(0);
        assert_eq!(bm.capacity(), 0);
        assert_eq!(bm.find_free(), None);
        bm.check_invariants().unwrap();
        let bm = MultiLevelBitmap::new(1);
        assert_eq!(bm.find_free(), Some(0));
    }

    #[test]
    fn fill_drain_round_trip() {
        let mut bm = MultiLevelBitmap::new(100);
        for i in 0..100 {
            assert_eq!(bm.find_free(), Some(i), "lowest free index first");
            bm.set(i);
        }
        assert!(bm.is_full());
        assert_eq!(bm.find_free(), None);
        bm.check_invariants().unwrap();
        for i in (0..100).rev() {
            bm.clear(i);
            assert_eq!(bm.find_free(), Some(i));
        }
        assert_eq!(bm.used(), 0);
        bm.check_invariants().unwrap();
    }

    #[test]
    fn summary_levels_collapse_to_one_bit() {
        // 4096 pages: 4096 → 512 → 64 → 8 → 1, four summary levels.
        let bm = MultiLevelBitmap::new(4096);
        assert_eq!(bm.level_count(), 5);
        bm.check_invariants().unwrap();
    }

    #[test]
    fn free_in_a_full_neighbourhood_is_found() {
        // Fill everything, then poke single holes at awkward positions:
        // group boundaries, word boundaries, the last bit.
        let n = 1000;
        let mut bm = MultiLevelBitmap::new(n);
        for i in 0..n {
            bm.set(i);
        }
        for hole in [0, 7, 8, 63, 64, 511, 512, n - 1] {
            bm.clear(hole);
            assert_eq!(bm.find_free(), Some(hole), "hole at {hole}");
            bm.check_invariants().unwrap();
            bm.set(hole);
        }
        assert_eq!(bm.find_free(), None);
    }

    #[test]
    fn grow_preserves_allocations_and_frees_padding() {
        let mut bm = MultiLevelBitmap::new(10);
        for i in 0..10 {
            bm.set(i);
        }
        assert_eq!(bm.find_free(), None);
        bm.grow(100);
        assert_eq!(bm.capacity(), 100);
        assert_eq!(bm.used(), 10);
        assert_eq!(bm.find_free(), Some(10), "new pages are free");
        for i in 0..10 {
            bm.clear(i);
        }
        bm.check_invariants().unwrap();
        bm.grow(50); // shrink request is a no-op
        assert_eq!(bm.capacity(), 100);
    }

    #[test]
    fn padding_is_never_returned() {
        // Capacity just past a group boundary: bits 9..16 of the first
        // summary group are padding and must stay invisible.
        let mut bm = MultiLevelBitmap::new(9);
        for i in 0..9 {
            bm.set(i);
        }
        assert_eq!(bm.find_free(), None);
        bm.check_invariants().unwrap();
    }
}
