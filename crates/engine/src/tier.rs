//! Power-of-two value tiers of fixed-size pages.
//!
//! Values up to 4 KB live in one of eight tiers (32 B doubling to
//! 4 KB); each tier is a contiguous byte arena carved into equal pages
//! whose allocation state is a [`MultiLevelBitmap`]. A value occupies
//! exactly one page of the smallest tier that fits it — internal
//! fragmentation is bounded at 2× and allocation is a bitmap scan, no
//! free lists. Larger values (rare in the Memcached traces the paper
//! targets) fall through to an overflow arena of individually-boxed
//! values so the tier path stays fixed-size.
//!
//! Tier arenas grow by doubling, and growth plus resident overflow
//! bytes are charged against a single memory budget; the engine layers
//! eviction on top when a charge would exceed it.

use crate::bitmap::MultiLevelBitmap;

/// Number of fixed-page tiers.
pub const TIER_COUNT: usize = 8;

/// Page size per tier: 32 B doubling to 4 KB.
pub const TIER_PAGE_BYTES: [u64; TIER_COUNT] = [32, 64, 128, 256, 512, 1024, 2048, 4096];

/// Class index of the overflow arena (one past the last tier); used by
/// the engine to key its per-class eviction policies.
pub const OVERFLOW_TIER: usize = TIER_COUNT;

/// Pages in a tier's first extent.
const INITIAL_PAGES: u64 = 8;

/// Where a stored value lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueRef {
    /// One page of a fixed-size tier.
    Tier {
        /// Tier index into [`TIER_PAGE_BYTES`].
        tier: u8,
        /// Page number within the tier arena.
        page: u64,
    },
    /// A slot in the overflow arena (value larger than the top tier).
    Overflow {
        /// Slot index in the overflow table.
        slot: u32,
    },
}

/// One fixed-page tier: a contiguous arena plus its allocation bitmap.
#[derive(Debug)]
struct Tier {
    page_bytes: u64,
    data: Vec<u8>,
    bitmap: MultiLevelBitmap,
}

impl Tier {
    fn new(page_bytes: u64) -> Self {
        Tier {
            page_bytes,
            data: Vec::new(),
            bitmap: MultiLevelBitmap::new(0),
        }
    }

    fn pages(&self) -> u64 {
        self.bitmap.capacity()
    }
}

/// The eight tiers plus the overflow arena, under one memory budget.
///
/// # Examples
///
/// ```
/// use densekv_engine::{TierSet, ValueRef};
///
/// let mut tiers = TierSet::new(1 << 20);
/// let vref = tiers.alloc(b"hello").expect("within budget");
/// assert!(matches!(vref, ValueRef::Tier { tier: 0, .. }));
/// assert_eq!(tiers.read(vref, 5), b"hello");
/// tiers.free(vref);
/// ```
#[derive(Debug)]
pub struct TierSet {
    tiers: Vec<Tier>,
    overflow: Vec<Option<Vec<u8>>>,
    overflow_free: Vec<u32>,
    overflow_items: u64,
    overflow_bytes: u64,
    /// Bytes charged against the budget: grown tier extents (grow-only,
    /// like slab pages assigned to a class) plus resident overflow
    /// values.
    charged_bytes: u64,
    budget_bytes: u64,
}

impl TierSet {
    /// An empty tier set with the given memory budget in bytes.
    #[must_use]
    pub fn new(budget_bytes: u64) -> Self {
        TierSet {
            tiers: TIER_PAGE_BYTES.iter().map(|&p| Tier::new(p)).collect(),
            overflow: Vec::new(),
            overflow_free: Vec::new(),
            overflow_items: 0,
            overflow_bytes: 0,
            charged_bytes: 0,
            budget_bytes,
        }
    }

    /// The class a value of `len` bytes allocates from: the smallest
    /// tier whose page fits it, or [`OVERFLOW_TIER`] past 4 KB.
    #[must_use]
    pub fn tier_for(len: usize) -> usize {
        TIER_PAGE_BYTES
            .iter()
            .position(|&p| len as u64 <= p)
            .unwrap_or(OVERFLOW_TIER)
    }

    /// Allocates a home for `value` and writes it there. `None` when
    /// the charge would exceed the budget — the engine's cue to evict
    /// from the corresponding class and retry.
    pub fn alloc(&mut self, value: &[u8]) -> Option<ValueRef> {
        let class = Self::tier_for(value.len());
        if class == OVERFLOW_TIER {
            return self.alloc_overflow(value);
        }
        let page = self.alloc_page(class)?;
        let tier = &mut self.tiers[class];
        let start = (page * tier.page_bytes) as usize;
        tier.data[start..start + value.len()].copy_from_slice(value);
        Some(ValueRef::Tier {
            tier: class as u8,
            page,
        })
    }

    /// Finds (growing the arena if the budget allows) a free page.
    fn alloc_page(&mut self, class: usize) -> Option<u64> {
        if let Some(page) = self.tiers[class].bitmap.find_free() {
            self.tiers[class].bitmap.set(page);
            return Some(page);
        }
        let (old_pages, page_bytes) = {
            let tier = &self.tiers[class];
            (tier.pages(), tier.page_bytes)
        };
        // Double the extent, or take whatever smaller growth still fits
        // the budget so the arena can fill right up to the line.
        let want = old_pages.max(INITIAL_PAGES);
        let affordable = self.budget_bytes.saturating_sub(self.charged_bytes) / page_bytes;
        let added = want.min(affordable);
        if added == 0 {
            return None;
        }
        self.charged_bytes += added * page_bytes;
        let tier = &mut self.tiers[class];
        let new_pages = old_pages + added;
        tier.data.resize((new_pages * page_bytes) as usize, 0);
        tier.bitmap.grow(new_pages);
        let page = tier.bitmap.find_free().expect("freshly grown extent");
        tier.bitmap.set(page);
        Some(page)
    }

    fn alloc_overflow(&mut self, value: &[u8]) -> Option<ValueRef> {
        let len = value.len() as u64;
        if self.charged_bytes + len > self.budget_bytes {
            return None;
        }
        self.charged_bytes += len;
        self.overflow_items += 1;
        self.overflow_bytes += len;
        let slot = match self.overflow_free.pop() {
            Some(slot) => {
                self.overflow[slot as usize] = Some(value.to_vec());
                slot
            }
            None => {
                self.overflow.push(Some(value.to_vec()));
                (self.overflow.len() - 1) as u32
            }
        };
        Some(ValueRef::Overflow { slot })
    }

    /// Releases a value's storage. Tier pages return to their bitmap
    /// (the extent stays charged, as slab pages stay with their class);
    /// overflow values uncharge their bytes.
    pub fn free(&mut self, vref: ValueRef) {
        match vref {
            ValueRef::Tier { tier, page } => {
                self.tiers[tier as usize].bitmap.clear(page);
            }
            ValueRef::Overflow { slot } => {
                let value = self.overflow[slot as usize]
                    .take()
                    .expect("overflow slot is live");
                let len = value.len() as u64;
                self.charged_bytes -= len;
                self.overflow_items -= 1;
                self.overflow_bytes -= len;
                self.overflow_free.push(slot);
            }
        }
    }

    /// The first `len` bytes of the value at `vref`.
    #[must_use]
    pub fn read(&self, vref: ValueRef, len: usize) -> &[u8] {
        match vref {
            ValueRef::Tier { tier, page } => {
                let tier = &self.tiers[tier as usize];
                let start = (page * tier.page_bytes) as usize;
                &tier.data[start..start + len]
            }
            ValueRef::Overflow { slot } => self.overflow[slot as usize]
                .as_ref()
                .expect("overflow slot is live"),
        }
    }

    /// Synthetic byte offset of `vref` within the engine's value
    /// address space (each class gets a disjoint 16 GB region), for
    /// [`densekv_kv::store::AccessTrace`] value addresses.
    #[must_use]
    pub fn byte_offset(&self, vref: ValueRef) -> u64 {
        const REGION: u64 = 1 << 34;
        match vref {
            ValueRef::Tier { tier, page } => {
                u64::from(tier) * REGION + page * self.tiers[tier as usize].page_bytes
            }
            ValueRef::Overflow { slot } => {
                OVERFLOW_TIER as u64 * REGION + u64::from(slot) * (1 << 20)
            }
        }
    }

    /// Pages currently allocated in tier `t`.
    #[must_use]
    pub fn tier_used_pages(&self, t: usize) -> u64 {
        self.tiers[t].bitmap.used()
    }

    /// Pages the tier `t` arena currently holds.
    #[must_use]
    pub fn tier_total_pages(&self, t: usize) -> u64 {
        self.tiers[t].pages()
    }

    /// Live overflow values.
    #[must_use]
    pub fn overflow_items(&self) -> u64 {
        self.overflow_items
    }

    /// Bytes held by live overflow values.
    #[must_use]
    pub fn overflow_bytes(&self) -> u64 {
        self.overflow_bytes
    }

    /// Bytes charged against the budget so far.
    #[must_use]
    pub fn charged_bytes(&self) -> u64 {
        self.charged_bytes
    }

    /// The configured memory budget.
    #[must_use]
    pub fn budget_bytes(&self) -> u64 {
        self.budget_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_route_to_the_smallest_fitting_tier() {
        assert_eq!(TierSet::tier_for(0), 0);
        assert_eq!(TierSet::tier_for(32), 0);
        assert_eq!(TierSet::tier_for(33), 1);
        assert_eq!(TierSet::tier_for(100), 2);
        assert_eq!(TierSet::tier_for(4096), TIER_COUNT - 1);
        assert_eq!(TierSet::tier_for(4097), OVERFLOW_TIER);
    }

    #[test]
    fn alloc_read_free_round_trip_across_classes() {
        let mut tiers = TierSet::new(4 << 20);
        let sizes = [0usize, 1, 32, 33, 500, 4096, 4097, 10_000];
        let mut refs = Vec::new();
        for (i, &n) in sizes.iter().enumerate() {
            let value = vec![i as u8; n];
            let vref = tiers.alloc(&value).expect("within budget");
            assert_eq!(tiers.read(vref, n), &value[..]);
            refs.push((vref, n));
        }
        assert_eq!(tiers.overflow_items(), 2);
        assert_eq!(tiers.overflow_bytes(), 4097 + 10_000);
        for (vref, n) in refs {
            assert_eq!(tiers.read(vref, n).len(), n);
            tiers.free(vref);
        }
        assert_eq!(tiers.overflow_items(), 0);
        for t in 0..TIER_COUNT {
            assert_eq!(tiers.tier_used_pages(t), 0);
        }
    }

    #[test]
    fn pages_are_reused_after_free() {
        let mut tiers = TierSet::new(1 << 20);
        let a = tiers.alloc(b"aaaa").unwrap();
        tiers.free(a);
        let b = tiers.alloc(b"bbbb").unwrap();
        assert_eq!(a, b, "freed page is the lowest free page again");
        assert_eq!(tiers.read(b, 4), b"bbbb");
    }

    #[test]
    fn growth_doubles_and_stops_at_the_budget() {
        // Budget of 64 pages of the 32 B tier.
        let mut tiers = TierSet::new(64 * 32);
        let mut refs = Vec::new();
        for i in 0..64u8 {
            refs.push(tiers.alloc(&[i; 8]).expect("within budget"));
        }
        assert_eq!(tiers.tier_total_pages(0), 64);
        assert_eq!(tiers.charged_bytes(), 64 * 32);
        assert!(tiers.alloc(&[0; 8]).is_none(), "budget exhausted");
        // Freeing a page makes room without growing.
        tiers.free(refs[10]);
        assert!(tiers.alloc(&[9; 8]).is_some());
        // Values are intact after all that growth.
        assert_eq!(tiers.read(refs[63], 8), &[63; 8]);
    }

    #[test]
    fn overflow_uncharges_on_free() {
        let mut tiers = TierSet::new(1 << 20);
        let big = vec![7u8; 100_000];
        let vref = tiers.alloc(&big).unwrap();
        assert_eq!(tiers.charged_bytes(), 100_000);
        assert!(
            tiers.alloc(&vec![8u8; 1_000_000]).is_none(),
            "second giant value exceeds the budget"
        );
        tiers.free(vref);
        assert_eq!(tiers.charged_bytes(), 0);
        assert!(
            tiers.alloc(&vec![8u8; 1_000_000]).is_some(),
            "freeing the overflow value returned its budget"
        );
    }

    #[test]
    fn byte_offsets_are_disjoint_per_class() {
        let mut tiers = TierSet::new(4 << 20);
        let small = tiers.alloc(&[1; 8]).unwrap();
        let mid = tiers.alloc(&[2; 300]).unwrap();
        let big = tiers.alloc(&vec![3u8; 8000]).unwrap();
        let offsets = [
            tiers.byte_offset(small),
            tiers.byte_offset(mid),
            tiers.byte_offset(big),
        ];
        assert_eq!(offsets[0] >> 34, 0);
        assert_eq!(offsets[1] >> 34, 4, "300 B lands in the 512 B tier");
        assert_eq!(offsets[2] >> 34, OVERFLOW_TIER as u64);
    }
}
