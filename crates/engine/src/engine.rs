//! The tiered fixed-page storage engine.
//!
//! Keys live in an open-addressing bucket table with linear probing
//! bounded at [`PROBE_LIMIT`] slots; a probe that cannot place a key
//! doubles the table (bricksKV's bucket-doubling). Values live in the
//! power-of-two page tiers of [`crate::tier`], so a GET is exactly the
//! paper's served path: hash → bucket slot → tier page. Protocol
//! semantics mirror the Memcached-model [`densekv_kv::KvStore`] verb
//! for verb — the differential proptest in `tests/` holds the two to
//! byte-identical protocol output.

use densekv_kv::hash::jenkins_oaat;
use densekv_kv::lru::EvictionPolicy;
use densekv_kv::store::{
    AccessTrace, GetHit, StoreConfig, StoreError, StoreStats, ITEM_HEADER_BYTES,
    MAX_ITEM_FOOTPRINT_BYTES, MAX_KEY_BYTES,
};
use densekv_kv::StoreBackend;

use crate::tier::{TierSet, ValueRef, OVERFLOW_TIER, TIER_PAGE_BYTES};

/// Longest linear probe before the bucket table doubles.
pub const PROBE_LIMIT: usize = 32;

/// Bucket sentinel: never occupied.
const EMPTY: u32 = u32::MAX;
/// Bucket sentinel: previously occupied; lookups probe past it.
const TOMB: u32 = u32::MAX - 1;

/// A live item: key and metadata inline, value out in a tier page.
#[derive(Debug, Clone)]
struct Item {
    key: Vec<u8>,
    hash: u64,
    flags: u32,
    /// Absolute expiry in seconds; `None` = immortal.
    expires_at: Option<u64>,
    cas: u64,
    vref: ValueRef,
    vlen: u32,
}

impl Item {
    fn footprint(&self) -> u64 {
        ITEM_HEADER_BYTES + self.key.len() as u64 + u64::from(self.vlen)
    }

    fn class(&self) -> usize {
        match self.vref {
            ValueRef::Tier { tier, .. } => tier as usize,
            ValueRef::Overflow { .. } => OVERFLOW_TIER,
        }
    }

    fn is_expired(&self, now: u64) -> bool {
        self.expires_at.is_some_and(|t| t <= now)
    }
}

/// The engine. Construct with [`Engine::new`]; drive it through
/// [`StoreBackend`].
///
/// # Examples
///
/// ```
/// use densekv_engine::Engine;
/// use densekv_kv::{StoreBackend, StoreConfig};
///
/// let mut e = Engine::new(StoreConfig::with_capacity(16 << 20));
/// e.set_with_flags(b"k", b"v".to_vec(), 0, None, 0)?;
/// assert_eq!(e.get(b"k", 0).expect("live").value(), b"v");
/// # Ok::<(), densekv_kv::StoreError>(())
/// ```
#[derive(Debug)]
pub struct Engine {
    config: StoreConfig,
    tiers: TierSet,
    /// Open-addressing table of item-slot indices (or sentinels).
    buckets: Vec<u32>,
    mask: u64,
    items: Vec<Option<Item>>,
    free_slots: Vec<u32>,
    /// One eviction policy per value class (8 tiers + overflow), as the
    /// model store keeps one per slab class.
    policies: Vec<Box<dyn EvictionPolicy + Send>>,
    stats: StoreStats,
    next_cas: u64,
    /// `probe_hist[i]` counts lookups that probed `i + 1` buckets.
    probe_hist: [u64; PROBE_LIMIT],
    doublings: u64,
    tombstones: u64,
}

impl Engine {
    /// An empty engine with the model store's configuration surface
    /// (memory budget, eviction kind, initial buckets, `evict_on_full`).
    #[must_use]
    pub fn new(config: StoreConfig) -> Self {
        let buckets = config.initial_buckets.next_power_of_two().max(8) as usize;
        Engine {
            tiers: TierSet::new(config.memory_bytes),
            buckets: vec![EMPTY; buckets],
            mask: buckets as u64 - 1,
            items: Vec::new(),
            free_slots: Vec::new(),
            policies: (0..=OVERFLOW_TIER)
                .map(|_| config.eviction.build())
                .collect(),
            stats: StoreStats::default(),
            next_cas: 1,
            probe_hist: [0; PROBE_LIMIT],
            doublings: 0,
            tombstones: 0,
            config,
        }
    }

    /// Current bucket count.
    #[must_use]
    pub fn bucket_count(&self) -> u64 {
        self.buckets.len() as u64
    }

    /// Times the bucket table has doubled.
    #[must_use]
    pub fn doublings(&self) -> u64 {
        self.doublings
    }

    /// Lookups that probed exactly `probes` buckets (1-based).
    #[must_use]
    pub fn probe_count(&self, probes: usize) -> u64 {
        self.probe_hist[probes - 1]
    }

    fn home(&self, hash: u64) -> usize {
        (hash & self.mask) as usize
    }

    /// Probes for `key`, lazily expiring a stale match. Returns the item
    /// slot and the number of buckets probed.
    fn lookup(&mut self, key: &[u8], hash: u64, now: u64) -> (Option<u32>, usize) {
        let home = self.home(hash);
        let mask = self.mask as usize;
        let mut probes = PROBE_LIMIT;
        let mut found = None;
        for i in 0..PROBE_LIMIT {
            let idx = (home + i) & mask;
            match self.buckets[idx] {
                EMPTY => {
                    probes = i + 1;
                    break;
                }
                TOMB => {}
                slot => {
                    let item = self.items[slot as usize].as_ref().expect("bucket is live");
                    if item.hash == hash && item.key == key {
                        probes = i + 1;
                        found = Some(slot);
                        break;
                    }
                }
            }
        }
        self.probe_hist[probes - 1] += 1;
        if let Some(slot) = found {
            let item = self.items[slot as usize].as_ref().expect("live");
            if item.is_expired(now) {
                let freed = item.footprint();
                self.remove_slot(slot);
                self.stats.expirations += 1;
                self.stats.expired_bytes += freed;
                return (None, probes);
            }
            return (Some(slot), probes);
        }
        (None, probes)
    }

    /// Tries to place `slot` within the probe window; `false` means the
    /// table must double.
    fn try_place(&mut self, hash: u64, slot: u32) -> bool {
        let home = self.home(hash);
        let mask = self.mask as usize;
        let mut tomb = None;
        for i in 0..PROBE_LIMIT {
            let idx = (home + i) & mask;
            match self.buckets[idx] {
                EMPTY => {
                    let dst = tomb.unwrap_or(idx);
                    if self.buckets[dst] == TOMB {
                        self.tombstones -= 1;
                    }
                    self.buckets[dst] = slot;
                    return true;
                }
                TOMB if tomb.is_none() => tomb = Some(idx),
                _ => {}
            }
        }
        // No EMPTY in the window, but a tombstone inside it is still a
        // reachable home (lookups probe past tombstones).
        if let Some(dst) = tomb {
            self.tombstones -= 1;
            self.buckets[dst] = slot;
            return true;
        }
        false
    }

    /// Places `slot`, doubling the bucket table if the probe window is
    /// full. `do_set` stores the item in `items` before calling this,
    /// so [`Self::double_table`]'s rehash already places the slot —
    /// retrying `try_place` afterwards would enter a second, duplicate
    /// bucket entry that outlives the item's deletion.
    fn table_insert(&mut self, hash: u64, slot: u32) {
        if !self.try_place(hash, slot) {
            self.double_table();
        }
    }

    /// Rebuilds the table at double the size (and doubles again if any
    /// item still cannot place within the probe window). Tombstones are
    /// dropped by the rehash.
    fn double_table(&mut self) {
        let mut new_len = self.buckets.len() * 2;
        'size: loop {
            let mask = new_len - 1;
            let mut buckets = vec![EMPTY; new_len];
            for (slot, entry) in self.items.iter().enumerate() {
                let Some(item) = entry.as_ref() else { continue };
                let home = (item.hash as usize) & mask;
                let mut placed = false;
                for i in 0..PROBE_LIMIT {
                    let idx = (home + i) & mask;
                    if buckets[idx] == EMPTY {
                        buckets[idx] = slot as u32;
                        placed = true;
                        break;
                    }
                }
                if !placed {
                    new_len *= 2;
                    continue 'size;
                }
            }
            self.doublings += 1;
            self.buckets = buckets;
            self.mask = mask as u64;
            self.tombstones = 0;
            return;
        }
    }

    /// Frees `slot`: tombstones its bucket, releases its tier page, and
    /// rolls the gauges back.
    fn remove_slot(&mut self, slot: u32) {
        let item = self.items[slot as usize].take().expect("slot is live");
        let home = self.home(item.hash);
        let mask = self.mask as usize;
        for i in 0..PROBE_LIMIT {
            let idx = (home + i) & mask;
            if self.buckets[idx] == slot {
                self.buckets[idx] = TOMB;
                self.tombstones += 1;
                break;
            }
        }
        self.policies[item.class()].on_remove(slot);
        self.tiers.free(item.vref);
        self.stats.bytes -= item.footprint();
        self.stats.items -= 1;
        self.free_slots.push(slot);
    }

    /// Allocates a tier home for `value`, evicting same-class victims
    /// as needed — the model store's strategy: eviction can only free
    /// pages of the class being allocated.
    fn allocate_with_eviction(&mut self, value: &[u8]) -> Result<ValueRef, StoreError> {
        let class = TierSet::tier_for(value.len());
        loop {
            if let Some(vref) = self.tiers.alloc(value) {
                return Ok(vref);
            }
            if !self.config.evict_on_full {
                return Err(StoreError::OutOfMemory);
            }
            let Some(victim) = self.policies[class].pop_victim() else {
                return Err(StoreError::OutOfMemory);
            };
            // pop_victim already dropped it from the policy;
            // remove_slot's on_remove is then a no-op.
            self.remove_slot(victim);
            self.stats.evictions += 1;
        }
    }

    /// The full store path shared by every mutating verb.
    fn do_set(
        &mut self,
        key: &[u8],
        value: Vec<u8>,
        flags: u32,
        ttl_secs: Option<u64>,
        now: u64,
    ) -> Result<(), StoreError> {
        if key.len() > MAX_KEY_BYTES {
            return Err(StoreError::KeyTooLong { len: key.len() });
        }
        let hash = jenkins_oaat(key);

        // Replace any existing copy first (frees its page) — as in the
        // model store, a failed allocation destroys the old item.
        let (existing, _) = self.lookup(key, hash, now);
        if let Some(slot) = existing {
            self.remove_slot(slot);
        }

        let footprint = ITEM_HEADER_BYTES + key.len() as u64 + value.len() as u64;
        if footprint > MAX_ITEM_FOOTPRINT_BYTES {
            return Err(StoreError::ValueTooLarge { bytes: footprint });
        }
        let vref = self.allocate_with_eviction(&value)?;
        let cas = self.next_cas;
        self.next_cas += 1;
        let item = Item {
            key: key.to_vec(),
            hash,
            flags,
            expires_at: ttl_secs.map(|t| now + t),
            cas,
            vref,
            vlen: value.len() as u32,
        };
        let class = item.class();
        self.stats.bytes += item.footprint();
        self.stats.items += 1;
        self.stats.sets += 1;
        self.stats.bytes_written += u64::from(item.vlen);

        let slot = match self.free_slots.pop() {
            Some(slot) => {
                self.items[slot as usize] = Some(item);
                slot
            }
            None => {
                self.items.push(Some(item));
                (self.items.len() - 1) as u32
            }
        };
        self.table_insert(hash, slot);
        self.policies[class].on_insert(slot);
        Ok(())
    }
}

impl StoreBackend for Engine {
    fn get(&mut self, key: &[u8], now: u64) -> Option<GetHit> {
        let hash = jenkins_oaat(key);
        let (slot, probes) = self.lookup(key, hash, now);
        match slot {
            Some(slot) => {
                let item = self.items[slot as usize].as_ref().expect("live");
                let class = item.class();
                let vlen = u64::from(item.vlen);
                let home = self.home(hash);
                let mask = self.mask as usize;
                let trace = AccessTrace {
                    bucket_offset: home as u64 * 8,
                    chain_offsets: (1..probes)
                        .map(|i| (((home + i) & mask) * 8) as u64)
                        .collect(),
                    value: Some((
                        AccessTrace::SLAB_REGION_OFFSET + self.tiers.byte_offset(item.vref),
                        vlen,
                    )),
                };
                let value = self.tiers.read(item.vref, item.vlen as usize).to_vec();
                let (flags, cas) = (item.flags, item.cas);
                self.policies[class].on_access(slot);
                self.stats.get_hits += 1;
                self.stats.bytes_read += vlen;
                Some(GetHit::new(value, flags, cas, trace))
            }
            None => {
                self.stats.get_misses += 1;
                None
            }
        }
    }

    fn set_with_flags(
        &mut self,
        key: &[u8],
        value: Vec<u8>,
        flags: u32,
        ttl_secs: Option<u64>,
        now: u64,
    ) -> Result<(), StoreError> {
        self.do_set(key, value, flags, ttl_secs, now)
    }

    fn add(
        &mut self,
        key: &[u8],
        value: Vec<u8>,
        ttl_secs: Option<u64>,
        now: u64,
    ) -> Result<(), StoreError> {
        let hash = jenkins_oaat(key);
        if self.lookup(key, hash, now).0.is_some() {
            return Err(StoreError::Exists);
        }
        self.do_set(key, value, 0, ttl_secs, now)
    }

    fn replace(
        &mut self,
        key: &[u8],
        value: Vec<u8>,
        ttl_secs: Option<u64>,
        now: u64,
    ) -> Result<(), StoreError> {
        let hash = jenkins_oaat(key);
        if self.lookup(key, hash, now).0.is_none() {
            return Err(StoreError::NotFound);
        }
        self.do_set(key, value, 0, ttl_secs, now)
    }

    fn concat(
        &mut self,
        key: &[u8],
        extra: &[u8],
        front: bool,
        now: u64,
    ) -> Result<(), StoreError> {
        let hash = jenkins_oaat(key);
        let (slot, _) = self.lookup(key, hash, now);
        let slot = slot.ok_or(StoreError::NotFound)?;
        let (mut value, flags, expires_at) = {
            let item = self.items[slot as usize].as_ref().expect("live");
            (
                self.tiers.read(item.vref, item.vlen as usize).to_vec(),
                item.flags,
                item.expires_at,
            )
        };
        if front {
            let mut combined = extra.to_vec();
            combined.extend_from_slice(&value);
            value = combined;
        } else {
            value.extend_from_slice(extra);
        }
        let ttl = expires_at.map(|t| t.saturating_sub(now));
        self.do_set(key, value, flags, ttl, now)
    }

    fn cas(
        &mut self,
        key: &[u8],
        value: Vec<u8>,
        cas: u64,
        ttl_secs: Option<u64>,
        now: u64,
    ) -> Result<(), StoreError> {
        let hash = jenkins_oaat(key);
        let (slot, _) = self.lookup(key, hash, now);
        let slot = slot.ok_or(StoreError::NotFound)?;
        let current = self.items[slot as usize].as_ref().expect("live").cas;
        if current != cas {
            return Err(StoreError::CasMismatch);
        }
        self.do_set(key, value, 0, ttl_secs, now)
    }

    fn incr_decr(
        &mut self,
        key: &[u8],
        delta: u64,
        decrement: bool,
        now: u64,
    ) -> Result<u64, StoreError> {
        let hash = jenkins_oaat(key);
        let (slot, _) = self.lookup(key, hash, now);
        let slot = slot.ok_or(StoreError::NotFound)?;
        let (current, flags, expires_at) = {
            let item = self.items[slot as usize].as_ref().expect("live");
            let value = self.tiers.read(item.vref, item.vlen as usize);
            let text = std::str::from_utf8(value).map_err(|_| StoreError::NotNumeric)?;
            let n: u64 = text.trim().parse().map_err(|_| StoreError::NotNumeric)?;
            (n, item.flags, item.expires_at)
        };
        let next = if decrement {
            current.saturating_sub(delta)
        } else {
            current.wrapping_add(delta)
        };
        let ttl = expires_at.map(|t| t.saturating_sub(now));
        self.do_set(key, next.to_string().into_bytes(), flags, ttl, now)?;
        Ok(next)
    }

    fn touch(&mut self, key: &[u8], ttl_secs: Option<u64>, now: u64) -> bool {
        let hash = jenkins_oaat(key);
        let (slot, _) = self.lookup(key, hash, now);
        match slot {
            Some(slot) => {
                let item = self.items[slot as usize].as_mut().expect("live");
                item.expires_at = ttl_secs.map(|t| now + t);
                self.stats.touches += 1;
                true
            }
            None => false,
        }
    }

    fn delete(&mut self, key: &[u8]) -> bool {
        let hash = jenkins_oaat(key);
        // As in the model store: a delete finds any TTL'd item already
        // expired, so it answers "not found" and counts an expiration.
        let (slot, _) = self.lookup(key, hash, u64::MAX.saturating_sub(1));
        match slot {
            Some(slot) => {
                self.remove_slot(slot);
                self.stats.deletes += 1;
                true
            }
            None => false,
        }
    }

    fn flush_all(&mut self) {
        let slots: Vec<u32> = self
            .items
            .iter()
            .enumerate()
            .filter_map(|(i, item)| item.as_ref().map(|_| i as u32))
            .collect();
        for slot in slots {
            self.remove_slot(slot);
        }
        self.buckets.fill(EMPTY);
        self.tombstones = 0;
    }

    fn stats(&self) -> StoreStats {
        self.stats
    }

    fn len(&self) -> u64 {
        self.stats.items
    }

    fn capacity_bytes(&self) -> u64 {
        self.tiers.budget_bytes()
    }

    fn backend_stat_lines(&self) -> Vec<(String, u64)> {
        let mut lines = vec![
            ("engine_items".into(), self.stats.items),
            ("engine_bucket_count".into(), self.bucket_count()),
            ("engine_bucket_doublings".into(), self.doublings),
            ("engine_tombstones".into(), self.tombstones),
        ];
        for (t, &p) in TIER_PAGE_BYTES.iter().enumerate() {
            let used = self.tiers.tier_used_pages(t);
            let total = self.tiers.tier_total_pages(t);
            let fill = (used * 100).checked_div(total).unwrap_or(0);
            lines.push((format!("engine_tier_{p}_used_pages"), used));
            lines.push((format!("engine_tier_{p}_total_pages"), total));
            lines.push((format!("engine_tier_{p}_fill_pct"), fill));
        }
        lines.push(("engine_overflow_items".into(), self.tiers.overflow_items()));
        lines.push(("engine_overflow_bytes".into(), self.tiers.overflow_bytes()));
        lines.push(("engine_charged_bytes".into(), self.tiers.charged_bytes()));
        lines.push(("engine_budget_bytes".into(), self.tiers.budget_bytes()));
        lines.push(("engine_evictions".into(), self.stats.evictions));
        for probes in 1..=4usize {
            lines.push((
                format!("engine_probe_len_{probes}"),
                self.probe_hist[probes - 1],
            ));
        }
        let sum = |range: std::ops::Range<usize>| -> u64 { self.probe_hist[range].iter().sum() };
        lines.push(("engine_probe_len_le8".into(), sum(4..8)));
        lines.push(("engine_probe_len_le16".into(), sum(8..16)));
        lines.push(("engine_probe_len_le32".into(), sum(16..32)));
        lines
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> Engine {
        Engine::new(StoreConfig::with_capacity(16 << 20))
    }

    #[test]
    fn set_get_delete_round_trip() {
        let mut e = engine();
        e.set_with_flags(b"k", b"hello".to_vec(), 9, None, 0)
            .unwrap();
        let hit = e.get(b"k", 0).expect("live");
        assert_eq!(hit.value(), b"hello");
        assert_eq!(hit.flags(), 9);
        assert_eq!(hit.cas(), 1, "CAS tokens start at 1");
        assert!(e.delete(b"k"));
        assert!(!e.delete(b"k"));
        assert!(e.get(b"k", 0).is_none());
        let s = e.stats();
        assert_eq!((s.get_hits, s.get_misses, s.sets, s.deletes), (1, 1, 1, 1));
        assert_eq!(s.bytes_read, 5);
        assert_eq!(s.bytes_written, 5);
        assert_eq!(s.items, 0);
        assert_eq!(s.bytes, 0);
    }

    #[test]
    fn values_land_in_their_tier_and_overflow_past_the_top() {
        let mut e = engine();
        e.set_with_flags(b"top", vec![1; 4096], 0, None, 0).unwrap();
        e.set_with_flags(b"over", vec![2; 4097], 0, None, 0)
            .unwrap();
        let lines: std::collections::HashMap<String, u64> =
            e.backend_stat_lines().into_iter().collect();
        assert_eq!(lines["engine_tier_4096_used_pages"], 1);
        assert_eq!(lines["engine_overflow_items"], 1);
        assert_eq!(lines["engine_overflow_bytes"], 4097);
        assert_eq!(e.get(b"top", 0).unwrap().value().len(), 4096);
        assert_eq!(e.get(b"over", 0).unwrap().value().len(), 4097);
    }

    #[test]
    fn footprint_boundary_matches_the_model_store_cap() {
        let mut e = engine();
        let fit = (MAX_ITEM_FOOTPRINT_BYTES - ITEM_HEADER_BYTES) as usize - 1;
        e.set_with_flags(b"k", vec![0; fit], 0, None, 0)
            .expect("footprint exactly at the cap stores (via overflow)");
        assert_eq!(
            e.set_with_flags(b"k", vec![0; fit + 1], 0, None, 0),
            Err(StoreError::ValueTooLarge {
                bytes: MAX_ITEM_FOOTPRINT_BYTES + 1
            })
        );
        // The failed oversized store destroyed the old copy, as in the
        // model store.
        assert!(e.get(b"k", 0).is_none());
    }

    #[test]
    fn lazy_expiry_counts_and_frees() {
        let mut e = engine();
        e.set_with_flags(b"t", b"xy".to_vec(), 0, Some(5), 0)
            .unwrap();
        assert!(e.get(b"t", 10).is_none(), "expired");
        let s = e.stats();
        assert_eq!(s.expirations, 1);
        assert_eq!(s.expired_bytes, ITEM_HEADER_BYTES + 1 + 2);
        assert_eq!(s.items, 0);
        assert!(!e.touch(b"t", Some(5), 10), "gone");
    }

    #[test]
    fn eviction_recycles_pages_within_a_class() {
        // Budget fits ~32 pages of the 512 B tier; keep writing 400 B
        // values and the tier must evict rather than error.
        let mut e = Engine::new(StoreConfig::with_capacity(16 << 10));
        for i in 0..200u32 {
            let key = format!("key{i}");
            e.set_with_flags(key.as_bytes(), vec![0; 400], 0, None, 0)
                .expect("eviction makes room");
        }
        assert!(e.stats().evictions > 0);
        assert!(e.len() > 0);
    }

    #[test]
    fn oom_surfaces_when_eviction_is_disabled() {
        let mut config = StoreConfig::with_capacity(16 << 10);
        config.evict_on_full = false;
        let mut e = Engine::new(config);
        let mut oom = false;
        for i in 0..200u32 {
            let key = format!("key{i}");
            if e.set_with_flags(key.as_bytes(), vec![0; 400], 0, None, 0)
                == Err(StoreError::OutOfMemory)
            {
                oom = true;
                break;
            }
        }
        assert!(oom, "budget exhausts without eviction");
        assert_eq!(e.stats().evictions, 0);
    }

    #[test]
    fn probe_pressure_doubles_the_bucket_table() {
        let mut config = StoreConfig::with_capacity(16 << 20);
        config.initial_buckets = 8;
        let mut e = Engine::new(config);
        for i in 0..500u32 {
            let key = format!("key{i}");
            e.set_with_flags(key.as_bytes(), b"v".to_vec(), 0, None, 0)
                .unwrap();
        }
        assert!(e.doublings() > 0, "500 keys cannot fit 8 buckets");
        assert!(e.bucket_count() >= 512);
        for i in 0..500u32 {
            let key = format!("key{i}");
            assert!(e.get(key.as_bytes(), 0).is_some(), "survives rehash");
        }
        let lines: std::collections::HashMap<String, u64> =
            e.backend_stat_lines().into_iter().collect();
        assert!(lines["engine_probe_len_1"] > 0);
        assert_eq!(lines["engine_bucket_doublings"], e.doublings());
    }

    #[test]
    fn doubling_mid_insert_leaves_no_duplicate_bucket_entries() {
        // Regression: the insert that triggers a doubling used to be
        // placed twice — once by the rehash (the slot is already in
        // `items`) and once by the retried `try_place`. The stale
        // duplicate outlived the item's deletion and made any lookup
        // probing through it panic on a vacated slot.
        let mut config = StoreConfig::with_capacity(16 << 20);
        config.initial_buckets = 8;
        let mut e = Engine::new(config);
        for i in 0..200u32 {
            let key = format!("key{i}");
            e.set_with_flags(key.as_bytes(), b"v".to_vec(), 0, None, 0)
                .unwrap();
        }
        assert!(e.doublings() > 0, "200 keys cannot fit 8 buckets");
        for i in 0..200u32 {
            let key = format!("key{i}");
            assert!(e.delete(key.as_bytes()), "every key is live");
        }
        for i in 0..200u32 {
            let key = format!("key{i}");
            assert!(e.get(key.as_bytes(), 0).is_none(), "fully deleted");
        }
        assert_eq!(e.len(), 0);
        // Every bucket entry must point at a live item slot: exactly
        // zero after deleting everything.
        let live = e.buckets.iter().filter(|&&b| b != EMPTY && b != TOMB);
        assert_eq!(live.count(), 0, "no stale bucket entries survive");
    }

    #[test]
    fn flush_all_resets_items_but_not_counters() {
        let mut e = engine();
        for i in 0..50u32 {
            e.set_with_flags(format!("k{i}").as_bytes(), vec![0; 100], 0, None, 0)
                .unwrap();
        }
        e.flush_all();
        assert_eq!(e.len(), 0);
        assert_eq!(e.stats().sets, 50, "monotonic counters survive");
        assert_eq!(e.stats().bytes, 0);
        for i in 0..50u32 {
            assert!(e.get(format!("k{i}").as_bytes(), 0).is_none());
        }
        // Storage is reusable after the flush.
        e.set_with_flags(b"again", b"v".to_vec(), 0, None, 0)
            .unwrap();
        assert!(e.get(b"again", 0).is_some());
    }

    #[test]
    fn verb_semantics_match_the_model_quirks() {
        let mut e = engine();
        assert_eq!(e.add(b"k", b"one".to_vec(), None, 0), Ok(()));
        assert_eq!(
            e.add(b"k", b"two".to_vec(), None, 0),
            Err(StoreError::Exists)
        );
        assert_eq!(e.replace(b"k", b"three".to_vec(), None, 0), Ok(()));
        assert_eq!(e.concat(b"k", b"!", false, 0), Ok(()));
        assert_eq!(e.concat(b"k", b">", true, 0), Ok(()));
        assert_eq!(e.get(b"k", 0).unwrap().value(), b">three!");
        e.set_with_flags(b"n", b"5".to_vec(), 0, None, 0).unwrap();
        assert_eq!(e.incr_decr(b"n", 3, false, 0), Ok(8));
        assert_eq!(e.incr_decr(b"n", 100, true, 0), Ok(0), "decr saturates");
        let cas = e.get(b"n", 0).unwrap().cas();
        assert_eq!(e.cas(b"n", b"9".to_vec(), cas, None, 0), Ok(()));
        assert_eq!(
            e.cas(b"n", b"9".to_vec(), cas, None, 0),
            Err(StoreError::CasMismatch)
        );
        assert_eq!(e.incr_decr(b"k", 1, false, 0), Err(StoreError::NotNumeric));
        let long_key = vec![b'k'; MAX_KEY_BYTES + 1];
        assert_eq!(
            e.set_with_flags(&long_key, b"v".to_vec(), 0, None, 0),
            Err(StoreError::KeyTooLong {
                len: MAX_KEY_BYTES + 1
            })
        );
    }

    #[test]
    fn delete_treats_ttl_items_as_expired() {
        let mut e = engine();
        e.set_with_flags(b"t", b"v".to_vec(), 0, Some(1000), 0)
            .unwrap();
        assert!(
            !e.delete(b"t"),
            "TTL'd item reads as expired at delete time"
        );
        assert_eq!(e.stats().expirations, 1);
        assert_eq!(e.stats().deletes, 0);
    }
}
