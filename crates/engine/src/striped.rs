//! Real-thread concurrency variants over the engine.
//!
//! Mirrors [`densekv_kv::concurrent`]'s locking structures — one global
//! mutex (Memcached 1.4's cache lock), striped per-shard locks, and
//! striped locks with per-stripe bag-LRU (the Wiggins & Langston
//! rework) — but over [`Engine`] rather than the model store, so the
//! `engine_bench` experiment measures the contention of a store that
//! really moves bytes. All three implement
//! [`densekv_kv::concurrent::SharedStore`] and plug into the same
//! host-thread harness as the baseline experiments.

use densekv_kv::concurrent::SharedStore;
use densekv_kv::hash::jenkins_oaat;
use densekv_kv::lru::EvictionKind;
use densekv_kv::store::{StoreConfig, StoreError};
use densekv_kv::StoreBackend;
use parking_lot::Mutex;

use crate::engine::Engine;

/// An engine sharded across independently locked stripes (one stripe =
/// the global-mutex variant).
///
/// # Examples
///
/// ```
/// use densekv_engine::StripedEngine;
/// use densekv_kv::concurrent::SharedStore;
///
/// let store = StripedEngine::striped(16 << 20, 4);
/// store.set(b"k", b"v".to_vec(), 0)?;
/// assert_eq!(store.get(b"k", 0).as_deref(), Some(&b"v"[..]));
/// # Ok::<(), densekv_kv::StoreError>(())
/// ```
#[derive(Debug)]
pub struct StripedEngine {
    stripes: Vec<Mutex<Engine>>,
}

impl StripedEngine {
    fn build(memory_bytes: u64, stripes: usize, eviction: EvictionKind) -> Self {
        assert!(stripes > 0, "need at least one stripe");
        let per_stripe = StoreConfig {
            memory_bytes: memory_bytes / stripes as u64,
            eviction,
            ..StoreConfig::with_capacity(memory_bytes)
        };
        StripedEngine {
            stripes: (0..stripes)
                .map(|_| Mutex::new(Engine::new(per_stripe.clone())))
                .collect(),
        }
    }

    /// One mutex around one engine: the Memcached 1.4 lock structure.
    #[must_use]
    pub fn global(memory_bytes: u64) -> Self {
        StripedEngine::build(memory_bytes, 1, EvictionKind::StrictLru)
    }

    /// `stripes` independently locked engines (strict per-stripe LRU),
    /// splitting the budget evenly.
    #[must_use]
    pub fn striped(memory_bytes: u64, stripes: usize) -> Self {
        StripedEngine::build(memory_bytes, stripes, EvictionKind::StrictLru)
    }

    /// Striped locks with per-stripe bag-LRU: accesses only set a flag
    /// inside the stripe, the cheapest hot path of the three.
    #[must_use]
    pub fn striped_bags(memory_bytes: u64, stripes: usize) -> Self {
        StripedEngine::build(memory_bytes, stripes, EvictionKind::Bags)
    }

    /// Number of stripes.
    #[must_use]
    pub fn stripe_count(&self) -> usize {
        self.stripes.len()
    }

    fn stripe_of(&self, key: &[u8]) -> usize {
        // Upper hash bits, so stripe choice stays independent of the
        // per-stripe bucket index (low bits) — as the model's striped
        // store shards.
        (jenkins_oaat(key) >> 32) as usize % self.stripes.len()
    }

    /// Sum of a per-stripe engine gauge, by `stats engine` line name.
    #[must_use]
    pub fn gauge(&self, name: &str) -> u64 {
        self.stripes
            .iter()
            .map(|stripe| {
                stripe
                    .lock()
                    .backend_stat_lines()
                    .iter()
                    .find(|(n, _)| n == name)
                    .map_or(0, |&(_, v)| v)
            })
            .sum()
    }
}

impl SharedStore for StripedEngine {
    fn get(&self, key: &[u8], now: u64) -> Option<Vec<u8>> {
        self.stripes[self.stripe_of(key)]
            .lock()
            .get(key, now)
            .map(|hit| hit.into_value())
    }

    fn set(&self, key: &[u8], value: Vec<u8>, now: u64) -> Result<(), StoreError> {
        self.stripes[self.stripe_of(key)]
            .lock()
            .set_with_flags(key, value, 0, None, now)
    }

    fn delete(&self, key: &[u8]) -> bool {
        self.stripes[self.stripe_of(key)].lock().delete(key)
    }

    fn len(&self) -> u64 {
        self.stripes.iter().map(|s| s.lock().len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn variants_round_trip_and_report_lengths() {
        for store in [
            StripedEngine::global(8 << 20),
            StripedEngine::striped(8 << 20, 4),
            StripedEngine::striped_bags(8 << 20, 4),
        ] {
            for i in 0..100u32 {
                store
                    .set(format!("key{i}").as_bytes(), vec![0; 100], 0)
                    .unwrap();
            }
            assert_eq!(store.len(), 100);
            assert_eq!(store.get(b"key7", 0).unwrap().len(), 100);
            assert!(store.delete(b"key7"));
            assert_eq!(store.len(), 99);
            assert_eq!(store.gauge("engine_items"), 99);
        }
    }

    #[test]
    fn stripes_split_the_budget() {
        let store = StripedEngine::striped(8 << 20, 4);
        assert_eq!(store.stripe_count(), 4);
        assert_eq!(store.gauge("engine_budget_bytes"), 8 << 20);
    }

    #[test]
    fn concurrent_writers_land_all_keys() {
        let store = Arc::new(StripedEngine::striped(16 << 20, 4));
        let mut handles = Vec::new();
        for t in 0..4u32 {
            let store = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                for i in 0..250u32 {
                    let key = format!("t{t}-key{i}");
                    store.set(key.as_bytes(), vec![t as u8; 64], 0).unwrap();
                }
            }));
        }
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(store.len(), 1000);
        assert_eq!(store.get(b"t3-key249", 0).as_deref(), Some(&[3u8; 64][..]));
    }
}
