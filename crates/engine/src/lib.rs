//! A bricksKV-style in-memory storage engine: key/value separation,
//! hashed key buckets with bounded probing, and power-of-two value
//! tiers of fixed-size pages managed by multi-level bitmaps.
//!
//! Where the Memcached-model [`densekv_kv::KvStore`] exists to *time*
//! a store (its slab offsets feed the cache/memory models), this crate
//! exists to *be* one: GETs really walk hash → bucket slot → tier page
//! through resident memory, which is what the paper's density argument
//! needs the serving stack to exercise. The layout follows bricksKV:
//!
//! * [`bitmap`] — multi-level allocation bitmaps: each upper-level bit
//!   summarizes 8 lower bits, and find-free is a top-down bit scan,
//! * [`tier`] — eight fixed-page value tiers (32 B doubling to 4 KB)
//!   plus an overflow arena for larger values, all charged against one
//!   memory budget,
//! * [`engine`] — the engine itself: an open-addressing bucket table
//!   (linear probing bounded at 32 slots, bucket-doubling on probe
//!   failure) over the tiers, implementing
//!   [`densekv_kv::StoreBackend`] with Memcached 1.4 semantics so the
//!   protocol loop, the TCP front-end, and the differential tests run
//!   it interchangeably with the model store,
//! * [`striped`] — the real-thread concurrency variants (global mutex,
//!   striped locks, per-stripe bag-LRU) the `engine_bench` experiment
//!   measures under Zipf mixed workloads.
//!
//! # Examples
//!
//! ```
//! use densekv_engine::Engine;
//! use densekv_kv::{StoreBackend, StoreConfig};
//!
//! let mut engine = Engine::new(StoreConfig::with_capacity(16 << 20));
//! engine.set_with_flags(b"user:42", b"hello".to_vec(), 0, None, 0)?;
//! let hit = engine.get(b"user:42", 0).expect("resident");
//! assert_eq!(hit.value(), b"hello");
//! # Ok::<(), densekv_kv::StoreError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitmap;
pub mod engine;
pub mod striped;
pub mod tier;

pub use bitmap::MultiLevelBitmap;
pub use engine::{Engine, PROBE_LIMIT};
pub use striped::StripedEngine;
pub use tier::{TierSet, ValueRef, OVERFLOW_TIER, TIER_COUNT, TIER_PAGE_BYTES};
