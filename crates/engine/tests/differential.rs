//! Differential property test: the engine, the Memcached-model store,
//! and a plain `BTreeMap` reference implementation answer byte-identical
//! protocol responses to random command sequences.
//!
//! Every case drives the same commands through
//! [`densekv_kv::server::serve_buffer`] against all three backends and
//! compares the raw reply bytes — which covers values, flags, CAS
//! tokens, error wording, and the full `stats` counter block (so lazy
//! expiry, byte accounting, and CAS advancement must agree, not just
//! the happy path). Value sizes are chosen to cross every tier
//! boundary, including the 4 KB top tier into overflow.

use densekv_engine::Engine;
use densekv_kv::server::serve_buffer;
use densekv_kv::store::{
    GetHit, KvStore, StoreConfig, StoreError, StoreStats, ITEM_HEADER_BYTES,
    MAX_ITEM_FOOTPRINT_BYTES, MAX_KEY_BYTES,
};
use densekv_kv::StoreBackend;
use std::collections::BTreeMap;

/// Budget large enough that no backend ever hits memory pressure —
/// eviction order is layout-dependent and deliberately out of scope
/// here (the engine's own tests cover it).
const BUDGET: u64 = 64 << 20;

/// A deliberately naive third implementation: a `BTreeMap` with the
/// Memcached 1.4 bookkeeping spelled out longhand. Where the model
/// store and the engine could share a structural bug, this one cannot.
#[derive(Default)]
struct RefStore {
    map: BTreeMap<Vec<u8>, RefItem>,
    stats: StoreStats,
    next_cas: u64,
}

struct RefItem {
    value: Vec<u8>,
    flags: u32,
    expires_at: Option<u64>,
    cas: u64,
}

impl RefItem {
    fn footprint(&self, key: &[u8]) -> u64 {
        ITEM_HEADER_BYTES + key.len() as u64 + self.value.len() as u64
    }
}

impl RefStore {
    fn new() -> Self {
        RefStore {
            next_cas: 1,
            ..RefStore::default()
        }
    }

    /// Lazy expiry at lookup time, mirroring the model store's
    /// `lookup`: an expired match is removed and counted, then reads as
    /// absent.
    fn expire(&mut self, key: &[u8], now: u64) {
        let expired = self
            .map
            .get(key)
            .is_some_and(|item| item.expires_at.is_some_and(|t| t <= now));
        if expired {
            let item = self.map.remove(key).expect("just matched");
            self.stats.expirations += 1;
            self.stats.expired_bytes += item.footprint(key);
            self.stats.items -= 1;
            self.stats.bytes -= item.footprint(key);
        }
    }

    fn remove_live(&mut self, key: &[u8]) {
        if let Some(item) = self.map.remove(key) {
            self.stats.items -= 1;
            self.stats.bytes -= item.footprint(key);
        }
    }

    fn store(
        &mut self,
        key: &[u8],
        value: Vec<u8>,
        flags: u32,
        ttl_secs: Option<u64>,
        now: u64,
    ) -> Result<(), StoreError> {
        if key.len() > MAX_KEY_BYTES {
            return Err(StoreError::KeyTooLong { len: key.len() });
        }
        self.expire(key, now);
        // The old copy dies before the size check, as in both real
        // backends: a failed oversized store destroys the existing item.
        self.remove_live(key);
        let footprint = ITEM_HEADER_BYTES + key.len() as u64 + value.len() as u64;
        if footprint > MAX_ITEM_FOOTPRINT_BYTES {
            return Err(StoreError::ValueTooLarge { bytes: footprint });
        }
        let item = RefItem {
            flags,
            expires_at: ttl_secs.map(|t| now + t),
            cas: self.next_cas,
            value,
        };
        self.next_cas += 1;
        self.stats.items += 1;
        self.stats.bytes += item.footprint(key);
        self.stats.sets += 1;
        self.stats.bytes_written += item.value.len() as u64;
        self.map.insert(key.to_vec(), item);
        Ok(())
    }
}

impl StoreBackend for RefStore {
    fn get(&mut self, key: &[u8], now: u64) -> Option<GetHit> {
        self.expire(key, now);
        match self.map.get(key) {
            Some(item) => {
                self.stats.get_hits += 1;
                self.stats.bytes_read += item.value.len() as u64;
                Some(GetHit::new(
                    item.value.clone(),
                    item.flags,
                    item.cas,
                    Default::default(),
                ))
            }
            None => {
                self.stats.get_misses += 1;
                None
            }
        }
    }

    fn set_with_flags(
        &mut self,
        key: &[u8],
        value: Vec<u8>,
        flags: u32,
        ttl_secs: Option<u64>,
        now: u64,
    ) -> Result<(), StoreError> {
        self.store(key, value, flags, ttl_secs, now)
    }

    fn add(
        &mut self,
        key: &[u8],
        value: Vec<u8>,
        ttl_secs: Option<u64>,
        now: u64,
    ) -> Result<(), StoreError> {
        self.expire(key, now);
        if self.map.contains_key(key) {
            return Err(StoreError::Exists);
        }
        self.store(key, value, 0, ttl_secs, now)
    }

    fn replace(
        &mut self,
        key: &[u8],
        value: Vec<u8>,
        ttl_secs: Option<u64>,
        now: u64,
    ) -> Result<(), StoreError> {
        self.expire(key, now);
        if !self.map.contains_key(key) {
            return Err(StoreError::NotFound);
        }
        self.store(key, value, 0, ttl_secs, now)
    }

    fn concat(
        &mut self,
        key: &[u8],
        extra: &[u8],
        front: bool,
        now: u64,
    ) -> Result<(), StoreError> {
        self.expire(key, now);
        let Some(item) = self.map.get(key) else {
            return Err(StoreError::NotFound);
        };
        let (flags, expires_at) = (item.flags, item.expires_at);
        let mut value = item.value.clone();
        if front {
            let mut combined = extra.to_vec();
            combined.extend_from_slice(&value);
            value = combined;
        } else {
            value.extend_from_slice(extra);
        }
        let ttl = expires_at.map(|t| t.saturating_sub(now));
        self.store(key, value, flags, ttl, now)
    }

    fn cas(
        &mut self,
        key: &[u8],
        value: Vec<u8>,
        cas: u64,
        ttl_secs: Option<u64>,
        now: u64,
    ) -> Result<(), StoreError> {
        self.expire(key, now);
        let Some(item) = self.map.get(key) else {
            return Err(StoreError::NotFound);
        };
        if item.cas != cas {
            return Err(StoreError::CasMismatch);
        }
        self.store(key, value, 0, ttl_secs, now)
    }

    fn incr_decr(
        &mut self,
        key: &[u8],
        delta: u64,
        decrement: bool,
        now: u64,
    ) -> Result<u64, StoreError> {
        self.expire(key, now);
        let Some(item) = self.map.get(key) else {
            return Err(StoreError::NotFound);
        };
        let text = std::str::from_utf8(&item.value).map_err(|_| StoreError::NotNumeric)?;
        let n: u64 = text.trim().parse().map_err(|_| StoreError::NotNumeric)?;
        let next = if decrement {
            n.saturating_sub(delta)
        } else {
            n.wrapping_add(delta)
        };
        let (flags, expires_at) = (item.flags, item.expires_at);
        let ttl = expires_at.map(|t| t.saturating_sub(now));
        self.store(key, next.to_string().into_bytes(), flags, ttl, now)?;
        Ok(next)
    }

    fn touch(&mut self, key: &[u8], ttl_secs: Option<u64>, now: u64) -> bool {
        self.expire(key, now);
        match self.map.get_mut(key) {
            Some(item) => {
                item.expires_at = ttl_secs.map(|t| now + t);
                self.stats.touches += 1;
                true
            }
            None => false,
        }
    }

    fn delete(&mut self, key: &[u8]) -> bool {
        // As in the model store: delete's lookup runs at the end of
        // time, so any TTL'd item counts as an expiration instead.
        self.expire(key, u64::MAX.saturating_sub(1));
        match self.map.remove(key) {
            Some(item) => {
                self.stats.items -= 1;
                self.stats.bytes -= item.footprint(key);
                self.stats.deletes += 1;
                true
            }
            None => false,
        }
    }

    fn flush_all(&mut self) {
        self.map.clear();
        self.stats.items = 0;
        self.stats.bytes = 0;
    }

    fn stats(&self) -> StoreStats {
        self.stats
    }

    fn len(&self) -> u64 {
        self.stats.items
    }

    fn capacity_bytes(&self) -> u64 {
        BUDGET
    }
}

/// Value lengths straddling every tier boundary (32 B … 4 KB) plus the
/// overflow crossover.
const SIZES: [usize; 14] = [
    0, 1, 31, 32, 33, 63, 64, 100, 511, 512, 4095, 4096, 4097, 6000,
];

/// A small key pool so commands collide and interact.
fn key(idx: u8) -> String {
    format!("key{:02}", idx % 16)
}

/// One protocol command as raw bytes.
fn command(kind: u8, k: u8, size: u8, fill: u8, ttl: u8, num: u8) -> Vec<u8> {
    let key = key(k);
    let n = SIZES[size as usize % SIZES.len()];
    let body = vec![b'a' + (fill % 26); n];
    let flags = u32::from(fill) % 100;
    let exptime = u64::from(ttl % 4); // 0 = immortal in the protocol
    let payload = |verb: &str| {
        let mut out = format!("{verb} {key} {flags} {exptime} {n}\r\n").into_bytes();
        out.extend_from_slice(&body);
        out.extend_from_slice(b"\r\n");
        out
    };
    match kind % 14 {
        0 | 1 => payload("set"),
        2 => payload("add"),
        3 => payload("replace"),
        4 => {
            let mut out = format!("append {key} 0 0 {n}\r\n").into_bytes();
            out.extend_from_slice(&body);
            out.extend_from_slice(b"\r\n");
            out
        }
        5 => {
            let mut out = format!("prepend {key} 0 0 {n}\r\n").into_bytes();
            out.extend_from_slice(&body);
            out.extend_from_slice(b"\r\n");
            out
        }
        6 => {
            // CAS tokens advance in lockstep across backends, so a
            // guess in the recent-token range hits or misses in
            // lockstep too.
            let guess = u64::from(num) % 64;
            let mut out = format!("cas {key} {flags} {exptime} {n} {guess}\r\n").into_bytes();
            out.extend_from_slice(&body);
            out.extend_from_slice(b"\r\n");
            out
        }
        7 => format!("get {key}\r\n").into_bytes(),
        8 => format!("gets {key}\r\n").into_bytes(),
        9 => format!("delete {key}\r\n").into_bytes(),
        10 => format!("incr {key} {}\r\n", u64::from(num) * 7).into_bytes(),
        11 => format!("decr {key} {}\r\n", u64::from(num) * 3).into_bytes(),
        12 => format!("touch {key} {exptime}\r\n").into_bytes(),
        _ => {
            // Keep the expensive global verbs rare but present.
            if num.is_multiple_of(11) {
                b"flush_all\r\n".to_vec()
            } else {
                b"stats\r\n".to_vec()
            }
        }
    }
}

/// One random op as drawn by the proptest strategies below.
type Op = ((u8, u8, u8), (u8, u8, u8), u64);

/// Drives `ops` through all three backends, comparing the raw reply
/// bytes op by op. `initial_buckets` sizes the engine's (and model's)
/// starting bucket table, so a tiny value forces the doubling path.
fn assert_backends_agree(ops: &[Op], initial_buckets: u64) {
    let config = StoreConfig {
        initial_buckets,
        ..StoreConfig::with_capacity(BUDGET)
    };
    let mut engine = Engine::new(config.clone());
    let mut model = KvStore::new(config);
    let mut reference = RefStore::new();
    let mut now = 0u64;
    for (i, &((kind, k, size), (fill, ttl, num), dt)) in ops.iter().enumerate() {
        now += dt; // the clock only moves forward
        let input = command(kind, k, size, fill, ttl, num);
        let from_engine = serve_buffer(&mut engine, &input, now);
        let from_model = serve_buffer(&mut model, &input, now);
        let from_reference = serve_buffer(&mut reference, &input, now);
        proptest::prop_assert_eq!(
            String::from_utf8_lossy(&from_engine),
            String::from_utf8_lossy(&from_model),
            "engine vs model diverged at op {} of {:?}",
            i,
            String::from_utf8_lossy(&input).lines().next().unwrap_or("")
        );
        proptest::prop_assert_eq!(
            String::from_utf8_lossy(&from_model),
            String::from_utf8_lossy(&from_reference),
            "model vs reference diverged at op {} of {:?}",
            i,
            String::from_utf8_lossy(&input).lines().next().unwrap_or("")
        );
    }
    // Final state agrees too, not just the observable stream.
    proptest::prop_assert_eq!(engine.len(), model.len());
    proptest::prop_assert_eq!(engine.stats(), reference.stats());
}

/// The op-sequence strategy shared by both differential properties.
fn ops_strategy() -> impl proptest::Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        (
            (
                proptest::any::<u8>(),
                proptest::any::<u8>(),
                proptest::any::<u8>(),
            ),
            (
                proptest::any::<u8>(),
                proptest::any::<u8>(),
                proptest::any::<u8>(),
            ),
            0u64..3,
        ),
        1..120,
    )
}

proptest::proptest! {
    /// Random command sequences produce byte-identical protocol output
    /// on all three backends, including the `stats` counter block.
    #[test]
    fn backends_agree_on_protocol_output(ops in ops_strategy()) {
        assert_backends_agree(&ops, StoreConfig::default().initial_buckets);
    }

    /// The same property starting from an 8-bucket table, so random
    /// sequences cross the bucket-doubling threshold — the insert that
    /// triggers a doubling, followed by deletes and re-lookups, is
    /// exactly where a duplicate bucket entry would diverge (or panic).
    #[test]
    fn backends_agree_across_bucket_doubling(ops in ops_strategy()) {
        assert_backends_agree(&ops, 8);
    }
}
