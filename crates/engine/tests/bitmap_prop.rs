//! Property test for the multi-level allocation bitmap: after any
//! interleaving of allocations, frees, and growth, every upper level
//! exactly summarizes the one below, and `find_free` agrees with a
//! naive linear scan over a mirror `Vec<bool>`.

use densekv_engine::MultiLevelBitmap;

proptest::proptest! {
    #[test]
    fn summaries_survive_any_alloc_free_interleaving(
        initial in 0u64..300,
        ops in proptest::collection::vec(
            (proptest::any::<u8>(), proptest::any::<u16>()),
            1..200,
        )
    ) {
        let mut bm = MultiLevelBitmap::new(initial);
        let mut mirror = vec![false; initial as usize];
        for &(kind, arg) in &ops {
            match kind % 8 {
                // Allocate the page find_free proposes (the engine's
                // only allocation path).
                0..=3 => {
                    let expect = mirror.iter().position(|&b| !b).map(|i| i as u64);
                    proptest::prop_assert_eq!(
                        bm.find_free(),
                        expect,
                        "find_free disagrees with the linear scan"
                    );
                    if let Some(page) = expect {
                        bm.set(page);
                        mirror[page as usize] = true;
                    }
                }
                // Free a random allocated page.
                4..=6 => {
                    let allocated: Vec<usize> = mirror
                        .iter()
                        .enumerate()
                        .filter_map(|(i, &b)| b.then_some(i))
                        .collect();
                    if !allocated.is_empty() {
                        let page = allocated[arg as usize % allocated.len()];
                        bm.clear(page as u64);
                        mirror[page] = false;
                    }
                }
                // Grow by a small amount (the tier's doubling is a
                // special case of this).
                _ => {
                    let grown = bm.capacity() + u64::from(arg % 100);
                    bm.grow(grown);
                    mirror.resize(grown as usize, false);
                }
            }
            if let Err(e) = bm.check_invariants() {
                proptest::prop_assert!(false, "invariant violated: {e}");
            }
            let used = mirror.iter().filter(|&&b| b).count() as u64;
            proptest::prop_assert_eq!(bm.used(), used);
        }
    }
}
