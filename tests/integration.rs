//! Cross-crate integration tests: whole request paths through the
//! protocol codec, the store, the simulator, the DHT, and the server
//! planner together.

use bytes::BytesMut;
use densekv::sim::{CoreSim, CoreSimConfig};
use densekv::sweep::{measure_point, SweepEffort};
use densekv_dht::ConsistentHashRing;
use densekv_kv::protocol::{parse_command, Command, Parsed};
use densekv_kv::server::serve_buffer;
use densekv_kv::store::{KvStore, StoreConfig};
use densekv_server::{evaluate_server, plan_server, ServerConstraints};
use densekv_stack::StackConfig;
use densekv_workload::{key_bytes, MixedWorkload, Op, Request, RequestGenerator};

#[test]
fn protocol_store_roundtrip_over_byte_stream() {
    let mut store = KvStore::new(StoreConfig::with_capacity(8 << 20));
    let response = serve_buffer(
        &mut store,
        b"set greeting 5 0 11\r\nhello world\r\nget greeting missing\r\nquit\r\n",
        0,
    );
    let text = String::from_utf8(response).expect("ascii protocol");
    assert_eq!(
        text,
        "STORED\r\nVALUE greeting 5 11\r\nhello world\r\nEND\r\n"
    );
}

#[test]
fn client_codec_roundtrip_through_server() {
    // Build requests with the client codec, serve them, parse the
    // responses with the client codec — a full in-process loopback.
    use densekv_kv::client::{parse_reply, Reply, RequestBuilder};
    let mut store = KvStore::new(StoreConfig::with_capacity(8 << 20));
    let mut builder = RequestBuilder::new();
    builder
        .set(b"user:1", b"alice", 0, 0)
        .set(b"hits", b"41", 0, 0)
        .incr_decr(b"hits", 1, false)
        .get(b"user:1");
    let out = serve_buffer(&mut store, &builder.take(), 0);
    let mut buf = BytesMut::from(&out[..]);
    let mut replies = Vec::new();
    while let Some(reply) = parse_reply(&mut buf).expect("well-formed") {
        replies.push(reply);
    }
    assert_eq!(replies[0], Reply::Stored);
    assert_eq!(replies[1], Reply::Stored);
    assert_eq!(replies[2], Reply::Number(42));
    match &replies[3] {
        Reply::Values(values) => assert_eq!(values[0].data, b"alice"),
        other => panic!("{other:?}"),
    }
}

#[test]
fn pipelined_commands_split_across_reads() {
    // The codec must handle a set whose data block arrives in pieces.
    let mut store = KvStore::new(StoreConfig::with_capacity(8 << 20));
    let full = b"set k 0 0 6\r\nabc".to_vec();
    let mut buf = BytesMut::from(&full[..]);
    assert_eq!(parse_command(&mut buf).expect("parse"), Parsed::Incomplete);
    buf.extend_from_slice(b"def\r\n");
    match parse_command(&mut buf).expect("parse") {
        Parsed::Complete(Command::Set { data, .. }) => {
            store.set(b"k", data.to_vec(), None, 0).expect("fits");
        }
        other => panic!("{other:?}"),
    }
    assert_eq!(store.get(b"k", 0).expect("hit").value(), b"abcdef");
}

#[test]
fn simulated_cluster_routes_and_serves_by_arc() {
    // 8 single-core stacks behind a consistent-hash ring: the client
    // routes each key to its arc owner; every owner serves from its own
    // store. This is the paper's deployment (one Memcached per core).
    const NODES: u32 = 8;
    let mut ring = ConsistentHashRing::new(8);
    for n in 0..NODES {
        ring.add_node(n);
    }
    let mut cores: Vec<CoreSim> = (0..NODES)
        .map(|_| CoreSim::new(CoreSimConfig::mercury_a7()).expect("valid"))
        .collect();

    let mut workload = MixedWorkload::etc_like(500, 99);
    // Populate every key on its owning node.
    for id in 0..500u64 {
        let key = key_bytes(id);
        let node = ring.node_for(&key).expect("ring nonempty") as usize;
        cores[node].preload_one(&key, 256).expect("fits");
    }
    let mut served = vec![0u64; NODES as usize];
    let mut misses = 0;
    for _ in 0..400 {
        let request = workload.next_request();
        let node = ring.node_for(&request.key).expect("ring nonempty") as usize;
        let timing = cores[node].execute(&request);
        served[node] += 1;
        if !timing.hit {
            misses += 1;
        }
    }
    assert_eq!(misses, 0, "every key was preloaded on its owner");
    let active = served.iter().filter(|&&s| s > 0).count();
    assert!(active >= 6, "traffic spreads across nodes: {served:?}");
}

#[test]
fn end_to_end_table4_mercury_band() {
    // Per-core measurement -> stack -> server, crossing four crates, must
    // land in the published band (Table 4: 32.7 MTPS, 54.8 KTPS/W).
    let point = measure_point(&CoreSimConfig::mercury_a7(), 64, SweepEffort::quick());
    let stack = StackConfig::mercury(densekv_cpu::CoreConfig::a7_1ghz(), 32, true).expect("valid");
    let plan = plan_server(
        &ServerConstraints::paper_1p5u(),
        stack,
        32.0 * point.get.perf.mem_gbps,
    );
    let report = evaluate_server(&plan, point.get.perf);
    assert!(
        (24e6..42e6).contains(&report.tps),
        "Mercury-32 TPS {:.1} M",
        report.tps / 1e6
    );
    assert!(
        (40.0..75.0).contains(&report.ktps_per_watt),
        "efficiency {:.1} KTPS/W",
        report.ktps_per_watt
    );
}

#[test]
fn iridium_put_pressure_exercises_flash_writes() {
    // A PUT-heavy Iridium workload: writes are slow (200 us programs) but
    // must stay functional — every overwritten key reads back.
    let mut core = CoreSim::new(CoreSimConfig::iridium_a7()).expect("valid");
    core.preload(1024, 32).expect("fits");
    let mut total_put_time = densekv_sim::Duration::ZERO;
    for _round in 0..3 {
        for id in 0..32u64 {
            let timing = core.execute(&Request {
                op: Op::Put,
                key: key_bytes(id),
                value_bytes: 1024,
            });
            total_put_time += timing.rtt;
        }
    }
    // 96 PUTs at sub-1KTPS rates: total simulated time beyond 50 ms.
    assert!(
        total_put_time > densekv_sim::Duration::from_millis(50),
        "flash PUTs are expensive: {total_put_time}"
    );
    // All values still served.
    for id in 0..32u64 {
        let timing = core.execute(&Request {
            op: Op::Get,
            key: key_bytes(id),
            value_bytes: 1024,
        });
        assert!(timing.hit, "key {id} must be resident after overwrites");
    }
}

#[test]
fn sla_holds_for_small_mercury_but_degrades_for_large_iridium() {
    // The paper's SLA framing: sub-millisecond for the bulk of requests.
    let sla = densekv_sim::Duration::from_millis(1);
    let mercury = measure_point(&CoreSimConfig::mercury_a7(), 1024, SweepEffort::quick());
    assert!(
        mercury.get.latency.fraction_within(sla) > 0.99,
        "Mercury small GETs are sub-ms"
    );
    let iridium_large = measure_point(
        &CoreSimConfig::iridium_a7(),
        256 << 10,
        SweepEffort::quick(),
    );
    assert!(
        iridium_large.get.latency.fraction_within(sla) < 0.5,
        "large flash reads blow the SLA (the Iridium trade-off)"
    );
}

#[test]
fn workspace_constants_are_mutually_consistent() {
    // Spot-check cross-crate invariants the experiments rely on.
    // Stack capacity feeds server density:
    let stack = StackConfig::iridium(densekv_cpu::CoreConfig::a7_1ghz(), 32).expect("valid");
    let plan = plan_server(&ServerConstraints::paper_1p5u(), stack, 0.5);
    assert_eq!(plan.stacks, 96);
    assert!((plan.density_gb() - 96.0 * 19.8).abs() < 1.0);
    // The wire cap used by the server model matches the net crate's.
    let wire = densekv_net::Wire::ten_gbe();
    assert!(wire.payload_bandwidth_bps() < 1.25e9);
}

#[test]
fn simulations_are_bit_reproducible() {
    // The workspace's determinism claim: identical configs produce
    // identical results, across all three simulation modes.
    let a = measure_point(&CoreSimConfig::mercury_a7(), 1024, SweepEffort::quick());
    let b = measure_point(&CoreSimConfig::mercury_a7(), 1024, SweepEffort::quick());
    assert_eq!(a.get.tps.to_bits(), b.get.tps.to_bits());
    assert_eq!(a.put.mean_rtt, b.put.mean_rtt);
    assert_eq!(a.get.perf.mem_gbps.to_bits(), b.get.perf.mem_gbps.to_bits());

    let ol = |_| {
        densekv::openloop::run(&densekv::openloop::OpenLoopConfig::gets(
            CoreSimConfig::iridium_a7(),
            64,
            2_000.0,
        ))
    };
    let (x, y) = (ol(()), ol(()));
    assert_eq!(x.latency.percentile(0.99), y.latency.percentile(0.99));
    assert_eq!(x.utilization.to_bits(), y.utilization.to_bits());

    let stack = |_| densekv::stack_sim::run(&densekv::stack_sim::StackSimConfig::mercury_a7(4, 64));
    let (s, t) = (stack(()), stack(()));
    assert_eq!(s.aggregate_tps.to_bits(), t.aggregate_tps.to_bits());
}

#[test]
fn binary_and_text_protocols_agree_on_state() {
    // The same logical operations through both wire protocols leave the
    // store in the same state.
    use densekv_kv::binary::{encode_request, serve_binary, Frame, Opcode};

    let run_text = |input: &[u8]| {
        let mut store = KvStore::new(StoreConfig::with_capacity(8 << 20));
        serve_buffer(&mut store, input, 0);
        store
    };
    let mut text_store =
        run_text(b"set k 7 0 5\r\nhello\r\nset n 0 0 2\r\n10\r\nincr n 5\r\ndelete missing\r\n");

    let mut wire = BytesMut::new();
    let mut extras = Vec::new();
    extras.extend_from_slice(&7u32.to_be_bytes());
    extras.extend_from_slice(&0u32.to_be_bytes());
    encode_request(
        &Frame {
            opcode: Opcode::Set,
            extras: extras.clone(),
            key: b"k".to_vec(),
            value: b"hello".to_vec(),
            opaque: 0,
            cas: 0,
        },
        &mut wire,
    );
    let mut extras0 = Vec::new();
    extras0.extend_from_slice(&0u32.to_be_bytes());
    extras0.extend_from_slice(&0u32.to_be_bytes());
    encode_request(
        &Frame {
            opcode: Opcode::Set,
            extras: extras0,
            key: b"n".to_vec(),
            value: b"10".to_vec(),
            opaque: 0,
            cas: 0,
        },
        &mut wire,
    );
    let mut incr_extras = Vec::new();
    incr_extras.extend_from_slice(&5u64.to_be_bytes());
    incr_extras.extend_from_slice(&0u64.to_be_bytes());
    incr_extras.extend_from_slice(&0u32.to_be_bytes());
    encode_request(
        &Frame {
            opcode: Opcode::Increment,
            extras: incr_extras,
            key: b"n".to_vec(),
            value: Vec::new(),
            opaque: 0,
            cas: 0,
        },
        &mut wire,
    );
    let mut binary_store = KvStore::new(StoreConfig::with_capacity(8 << 20));
    serve_binary(&mut binary_store, &wire, 0);

    for key in [b"k".as_slice(), b"n".as_slice()] {
        let t = text_store.get(key, 0).expect("text store has key");
        let b = binary_store.get(key, 0).expect("binary store has key");
        assert_eq!(t.value(), b.value(), "value mismatch for {key:?}");
        assert_eq!(t.flags(), b.flags(), "flags mismatch for {key:?}");
    }
    assert_eq!(text_store.len(), binary_store.len());
}

#[test]
fn chrome_trace_export_is_stable() {
    // Golden-file check: the Chrome trace-event JSON for a tiny seeded
    // cluster run must be byte-stable. If a deliberate change to the
    // simulator or exporter moves it, regenerate with
    // `BLESS=1 cargo test -p densekv --test integration chrome_trace`.
    use densekv_cluster::{run_with_telemetry, ClusterConfig, ServiceProfile, TIMELINE_COLUMNS};
    use densekv_sim::Duration;
    use densekv_telemetry::{validate_json, Telemetry, TelemetryConfig};

    let mut config = ClusterConfig::new(ServiceProfile::synthetic(), 200_000.0);
    config.requests = 40;
    config.warmup = 10;
    config.seed = 7;
    let mut tele = Telemetry::enabled(TelemetryConfig {
        sample_every: 10,
        timeline_interval: Duration::from_micros(250),
        timeline_columns: TIMELINE_COLUMNS.to_vec(),
    });
    run_with_telemetry(&config, &mut tele);
    let json = tele.tracer.to_chrome_json();
    validate_json(&json).expect("exported trace is valid JSON");
    assert!(
        !tele.tracer.spans().is_empty(),
        "tiny run still samples spans"
    );

    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/golden/cluster_trace.json"
    );
    if std::env::var("BLESS").is_ok_and(|v| v != "0") {
        std::fs::write(path, &json).expect("bless golden file");
    }
    let golden = std::fs::read_to_string(path).expect("golden file exists (BLESS=1 to create)");
    assert_eq!(
        json, golden,
        "Chrome trace JSON drifted from tests/golden/cluster_trace.json; \
         re-bless only if the change is intentional"
    );
}
