//! Property-based tests (proptest) over the core data structures and
//! invariants the simulation depends on.

use std::collections::HashMap;

use proptest::prelude::*;

use densekv_dht::ConsistentHashRing;
use densekv_kv::lru::{BagLru, EvictionPolicy, StrictLru};
use densekv_kv::slab::{SlabAllocator, SlabError};
use densekv_kv::store::{KvStore, StoreConfig};
use densekv_kv::table::HashTable;
use densekv_mem::flash::FlashConfig;
use densekv_mem::ftl::Ftl;
use densekv_sim::stats::LatencyHistogram;
use densekv_sim::{Duration, SplitMix64};

// ---------------------------------------------------------------------
// Store vs. a HashMap reference model
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum StoreOp {
    Set(u8, u16),
    Get(u8),
    Delete(u8),
}

fn store_op() -> impl Strategy<Value = StoreOp> {
    prop_oneof![
        (any::<u8>(), 1u16..2048).prop_map(|(k, len)| StoreOp::Set(k, len)),
        any::<u8>().prop_map(StoreOp::Get),
        any::<u8>().prop_map(StoreOp::Delete),
    ]
}

proptest! {
    /// With ample memory (no evictions), the store behaves exactly like a
    /// map from keys to (value, length).
    #[test]
    fn store_matches_hashmap_model(ops in proptest::collection::vec(store_op(), 1..200)) {
        let mut store = KvStore::new(StoreConfig::with_capacity(64 << 20));
        let mut model: HashMap<u8, u16> = HashMap::new();
        for op in ops {
            match op {
                StoreOp::Set(k, len) => {
                    let key = [b'k', k];
                    store.set(&key, vec![k; len as usize], None, 0).unwrap();
                    model.insert(k, len);
                }
                StoreOp::Get(k) => {
                    let key = [b'k', k];
                    let got = store.get(&key, 0);
                    match model.get(&k) {
                        Some(&len) => {
                            let hit = got.expect("model says present");
                            prop_assert_eq!(hit.value().len(), len as usize);
                            prop_assert!(hit.value().iter().all(|&b| b == k));
                        }
                        None => prop_assert!(got.is_none()),
                    }
                }
                StoreOp::Delete(k) => {
                    let key = [b'k', k];
                    let existed = store.delete(&key).is_some();
                    prop_assert_eq!(existed, model.remove(&k).is_some());
                }
            }
            prop_assert_eq!(store.len(), model.len() as u64);
        }
    }

    /// Store byte accounting equals the sum of live item footprints.
    #[test]
    fn store_bytes_accounting(ops in proptest::collection::vec(store_op(), 1..100)) {
        let mut store = KvStore::new(StoreConfig::with_capacity(64 << 20));
        let mut model: HashMap<u8, u16> = HashMap::new();
        for op in ops {
            match op {
                StoreOp::Set(k, len) => {
                    store.set(&[b'k', k], vec![0; len as usize], None, 0).unwrap();
                    model.insert(k, len);
                }
                StoreOp::Delete(k) => {
                    store.delete(&[b'k', k]);
                    model.remove(&k);
                }
                StoreOp::Get(_) => {}
            }
        }
        let expected: u64 = model
            .values()
            .map(|&len| densekv_kv::store::ITEM_HEADER_BYTES + 2 + u64::from(len))
            .sum();
        prop_assert_eq!(store.stats().bytes, expected);
    }
}

// ---------------------------------------------------------------------
// Slab allocator
// ---------------------------------------------------------------------

proptest! {
    /// Live chunks never alias: every live allocation owns a disjoint
    /// byte range.
    #[test]
    fn slab_live_chunks_are_disjoint(
        sizes in proptest::collection::vec(1u64..32_768, 1..60),
        free_mask in proptest::collection::vec(any::<bool>(), 60)
    ) {
        let mut slab = SlabAllocator::new(16 << 20);
        let mut live: Vec<(u64, u64)> = Vec::new(); // (offset, len)
        let mut addrs = Vec::new();
        for (i, &size) in sizes.iter().enumerate() {
            match slab.allocate(size) {
                Ok(addr) => {
                    let off = slab.byte_offset(addr);
                    let chunk = slab.chunk_bytes(addr.class);
                    prop_assert!(chunk >= size);
                    for &(o, l) in &live {
                        prop_assert!(off + chunk <= o || o + l <= off,
                            "chunk [{off}, {}) overlaps [{o}, {})", off + chunk, o + l);
                    }
                    live.push((off, chunk));
                    addrs.push(Some((addr, off, chunk)));
                }
                Err(SlabError::OutOfMemory) => addrs.push(None),
                Err(e) => prop_assert!(false, "unexpected error {e}"),
            }
            // Occasionally free an earlier allocation.
            if free_mask[i % free_mask.len()] {
                if let Some(slot) = addrs.iter().position(|a| a.is_some()) {
                    let (addr, off, chunk) = addrs[slot].take().expect("checked");
                    slab.free(addr);
                    live.retain(|&(o, _)| o != off || chunk == 0);
                }
            }
        }
    }

    /// allocated_bytes is exactly the sum of live chunk sizes.
    #[test]
    fn slab_accounting_balances(sizes in proptest::collection::vec(1u64..100_000, 1..40)) {
        let mut slab = SlabAllocator::new(16 << 20);
        let mut allocated = Vec::new();
        for size in sizes {
            if let Ok(addr) = slab.allocate(size) {
                allocated.push(addr);
            }
        }
        let expected: u64 = allocated.iter().map(|a| slab.chunk_bytes(a.class)).sum();
        prop_assert_eq!(slab.allocated_bytes(), expected);
        for addr in allocated.drain(..) {
            slab.free(addr);
        }
        prop_assert_eq!(slab.allocated_bytes(), 0);
    }
}

// ---------------------------------------------------------------------
// Hash table vs. a reference model
// ---------------------------------------------------------------------

proptest! {
    /// The incremental-resize table agrees with a simple map of
    /// (hash, slot) pairs through arbitrary operation sequences.
    #[test]
    fn table_matches_model(ops in proptest::collection::vec(
        (any::<u16>(), 0u32..64, any::<bool>()), 1..300))
    {
        let mut table = HashTable::new(4);
        let mut model: Vec<(u64, u32)> = Vec::new();
        for (hash16, slot, insert) in ops {
            let hash = u64::from(hash16);
            let present = model.iter().any(|&(h, s)| h == hash && s == slot);
            if insert && !present {
                table.insert(hash, slot);
                model.push((hash, slot));
            } else if !insert && present {
                prop_assert!(table.remove(hash, slot));
                model.retain(|&(h, s)| !(h == hash && s == slot));
            }
            prop_assert_eq!(table.len(), model.len() as u64);
        }
        // Every modeled entry findable at the end (through any pending
        // migration).
        for &(hash, slot) in &model {
            let found = table.find_with(hash, |s| s == slot);
            prop_assert_eq!(found.slot, Some(slot), "entry ({}, {}) lost", hash, slot);
        }
    }
}

// ---------------------------------------------------------------------
// Eviction policies
// ---------------------------------------------------------------------

fn policy_drains_exactly_live(policy: &mut dyn EvictionPolicy, ops: &[(u8, u8)]) -> bool {
    use std::collections::HashSet;
    let mut live: HashSet<u32> = HashSet::new();
    for &(slot8, action) in ops {
        let slot = u32::from(slot8 % 32);
        match action % 3 {
            0 => {
                if !live.contains(&slot) {
                    policy.on_insert(slot);
                    live.insert(slot);
                }
            }
            1 => policy.on_access(slot),
            _ => {
                if live.remove(&slot) {
                    policy.on_remove(slot);
                }
            }
        }
    }
    let mut drained = HashSet::new();
    while let Some(v) = policy.pop_victim() {
        if !drained.insert(v) {
            return false; // duplicate victim
        }
    }
    drained == live
}

proptest! {
    /// Both policies evict each live slot exactly once, and nothing else.
    #[test]
    fn lru_policies_drain_exactly_live(ops in proptest::collection::vec(
        (any::<u8>(), any::<u8>()), 1..200))
    {
        let mut strict = StrictLru::new();
        prop_assert!(policy_drains_exactly_live(&mut strict, &ops), "StrictLru");
        let mut bags = BagLru::new(8);
        prop_assert!(policy_drains_exactly_live(&mut bags, &ops), "BagLru");
    }
}

// ---------------------------------------------------------------------
// FTL
// ---------------------------------------------------------------------

proptest! {
    /// Arbitrary write patterns: every written page reads back from the
    /// location the FTL reports, amplification is >= 1, and no two live
    /// logical pages share a physical page.
    #[test]
    fn ftl_mapping_stays_consistent(writes in proptest::collection::vec(0u64..48, 1..600)) {
        let config = FlashConfig {
            planes: 2,
            page_bytes: 8 << 10,
            pages_per_block: 4,
            blocks_per_plane: 16,
            read_latency: Duration::from_micros(10),
            program_latency: Duration::from_micros(200),
            erase_latency: Duration::from_millis(2),
            controller_overhead: Duration::ZERO,
            active_mw_per_gbps: 6.0,
        };
        let mut ftl = Ftl::new(config, 0.25);
        let mut written = std::collections::HashSet::new();
        for lpn in writes {
            let lpn = lpn % ftl.exported_pages();
            ftl.write(lpn).expect("within capacity");
            written.insert(lpn);
        }
        prop_assert!(ftl.write_amplification() >= 1.0);
        let mut locations = std::collections::HashSet::new();
        for &lpn in &written {
            let (loc, _) = ftl.read(lpn).expect("written page readable");
            prop_assert!(locations.insert(loc), "physical page shared: {loc:?}");
        }
    }
}

// ---------------------------------------------------------------------
// DHT ring
// ---------------------------------------------------------------------

proptest! {
    /// Removing a node only remaps keys that node owned; everyone else's
    /// assignment is untouched.
    #[test]
    fn ring_removal_is_minimal(nodes in 2u32..20, victim_seed in any::<u64>(),
                               keys in proptest::collection::vec(any::<u64>(), 50))
    {
        let mut before = ConsistentHashRing::new(8);
        for n in 0..nodes {
            before.add_node(n);
        }
        let victim = (victim_seed % u64::from(nodes)) as u32;
        let mut after = before.clone();
        after.remove_node(victim);
        for key in keys {
            let kb = key.to_le_bytes();
            let owner_before = before.node_for(&kb).expect("nonempty");
            let owner_after = after.node_for(&kb).expect("nonempty");
            if owner_before != victim {
                prop_assert_eq!(owner_before, owner_after, "non-victim key moved");
            } else {
                prop_assert_ne!(owner_after, victim);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Cluster simulator
// ---------------------------------------------------------------------

use densekv_cluster::{
    run as run_cluster, ClusterConfig, ClusterWorkload, FaultPlan, ServiceProfile,
};
use densekv_sim::SimTime;

/// A small, fast cluster run for the property tests.
fn cluster_base(seed: u64) -> ClusterConfig {
    let mut config = ClusterConfig::new(ServiceProfile::synthetic(), 1.0);
    config.topology.stacks = 4;
    config.topology.cores_per_stack = 4;
    config.requests = 800;
    config.warmup = 200;
    config.seed = seed;
    config.workload.key_population = 10_000;
    // Stay below the Zipf-hottest core's saturation point so queues are
    // stable regardless of the sampled seed.
    config.workload.rate_per_sec = 0.4 * densekv_cluster::effective_capacity(&config);
    config
}

proptest! {
    /// Cluster runs are exactly reproducible: any seed, same percentiles.
    #[test]
    fn cluster_same_seed_reproduces_percentiles(seed in any::<u64>()) {
        let config = cluster_base(seed);
        let a = run_cluster(&config);
        let b = run_cluster(&config);
        prop_assert_eq!(a.latency.percentile(0.50), b.latency.percentile(0.50));
        prop_assert_eq!(a.latency.percentile(0.95), b.latency.percentile(0.95));
        prop_assert_eq!(a.latency.percentile(0.99), b.latency.percentile(0.99));
        prop_assert_eq!(a.shard_hits, b.shard_hits);
        prop_assert_eq!(a.shard_misses, b.shard_misses);
    }

    /// Multiget fan-out amplifies the tail: at matched shard-level load,
    /// the logical p99 (a max over batch legs) dominates single-GET p99.
    #[test]
    fn multiget_p99_dominates_single_get(seed in any::<u64>(), batch in 2u32..6) {
        let single = cluster_base(seed);
        let mut multi = single.clone();
        multi.workload = ClusterWorkload {
            multiget_batch: batch,
            rate_per_sec: single.workload.rate_per_sec / f64::from(batch),
            ..single.workload.clone()
        };
        let s = run_cluster(&single);
        let m = run_cluster(&multi);
        prop_assert_eq!(m.shard_hits + m.shard_misses, u64::from(batch) * m.measured);
        // Strict dominance holds in distribution (a max over iid legs),
        // but a p99 estimated from 800 requests carries sampling noise,
        // so allow a small finite-sample tolerance.
        let m_p99 = m.latency.percentile(0.99).expect("samples");
        let s_p99 = s.latency.percentile(0.99).expect("samples");
        prop_assert!(
            m_p99.as_secs_f64() >= 0.85 * s_p99.as_secs_f64(),
            "batch {} p99 {:?} far below single-get p99 {:?}", batch, m_p99, s_p99
        );
    }

    /// The engine's exact per-key remap fraction after a stack failure
    /// agrees with the DHT's sampled `remapped_fraction` estimate.
    #[test]
    fn failover_remap_matches_dht_estimate(seed in any::<u64>(), kill in 0u32..4) {
        let mut config = cluster_base(seed);
        config.fault = Some(FaultPlan {
            at: SimTime::ZERO + Duration::from_micros(200),
            kill_stacks: vec![kill],
        });
        let result = run_cluster(&config);
        let remap = result.remap.expect("fault ran");

        let topo = config.topology;
        let mut before = ConsistentHashRing::new(topo.vnodes);
        for stack in 0..topo.stacks {
            for core in 0..topo.cores_per_stack {
                before.add_node(topo.node_id(stack, core));
            }
        }
        let mut after = before.clone();
        for core in 0..topo.cores_per_stack {
            after.remove_node(topo.node_id(kill, core));
        }
        let estimate = densekv_dht::remapped_fraction(&before, &after, 100_000, seed);
        prop_assert!(
            (estimate - remap.key_fraction_remapped).abs() < 0.02,
            "sampled {:.4} vs exact {:.4}", estimate, remap.key_fraction_remapped
        );
    }
}

// ---------------------------------------------------------------------
// Statistics
// ---------------------------------------------------------------------

proptest! {
    /// Percentiles are monotone in q and bounded by the recorded range.
    #[test]
    fn histogram_percentiles_are_sane(samples in proptest::collection::vec(1u64..10_000_000, 1..300)) {
        let mut h = LatencyHistogram::new();
        let max = *samples.iter().max().expect("nonempty");
        for &ns in &samples {
            h.record(Duration::from_nanos(ns));
        }
        let mut last = Duration::ZERO;
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            let p = h.percentile(q).expect("nonempty");
            prop_assert!(p >= last, "percentile not monotone at q={q}");
            prop_assert!(p <= Duration::from_nanos(max));
            last = p;
        }
        prop_assert_eq!(h.count(), samples.len() as u64);
    }

    /// SplitMix64 sequences are reproducible and `next_below` respects
    /// its bound for arbitrary seeds/bounds.
    #[test]
    fn rng_bound_and_reproducibility(seed in any::<u64>(), bound in 1u64..u64::MAX) {
        let mut a = SplitMix64::new(seed);
        let mut b = SplitMix64::new(seed);
        for _ in 0..50 {
            let x = a.next_below(bound);
            prop_assert!(x < bound);
            prop_assert_eq!(x, b.next_below(bound));
        }
    }
}

// ---------------------------------------------------------------------
// Cache simulator vs. a reference LRU model
// ---------------------------------------------------------------------

/// A trivially correct set-associative LRU cache: per-set Vec, linear
/// scan, explicit recency ordering.
struct ReferenceCache {
    sets: Vec<Vec<u64>>,
    ways: usize,
}

impl ReferenceCache {
    fn new(sets: usize, ways: usize) -> Self {
        ReferenceCache {
            sets: vec![Vec::new(); sets],
            ways,
        }
    }

    fn access(&mut self, line: u64) -> bool {
        let nsets = self.sets.len() as u64;
        let set = &mut self.sets[(line % nsets) as usize];
        if let Some(pos) = set.iter().position(|&l| l == line) {
            let l = set.remove(pos);
            set.insert(0, l);
            true
        } else {
            if set.len() == self.ways {
                set.pop();
            }
            set.insert(0, line);
            false
        }
    }
}

proptest! {
    /// The production cache simulator agrees with the reference model on
    /// every access of arbitrary traces, across geometries.
    #[test]
    fn cache_matches_reference_lru(
        trace in proptest::collection::vec(0u64..512, 1..600),
        ways in 1u32..8,
        sets_pow in 0u32..5,
    ) {
        let sets = 1usize << sets_pow;
        let config = densekv_cpu::cache::CacheConfig {
            size_bytes: 64 * ways as u64 * sets as u64,
            line_bytes: 64,
            ways,
            latency: Duration::from_nanos(1),
        };
        let mut cache = densekv_cpu::cache::Cache::new(config);
        let mut reference = ReferenceCache::new(sets, ways as usize);
        for (i, &line) in trace.iter().enumerate() {
            let got = cache.access(line);
            let want = reference.access(line);
            prop_assert_eq!(got, want, "access {} (line {}) diverged", i, line);
        }
    }
}

// ---------------------------------------------------------------------
// Protocol robustness
// ---------------------------------------------------------------------

proptest! {
    /// The command parser never panics on arbitrary bytes — it returns
    /// Complete, Incomplete, or a protocol error.
    #[test]
    fn protocol_parser_never_panics(input in proptest::collection::vec(any::<u8>(), 0..400)) {
        let mut buf = bytes::BytesMut::from(&input[..]);
        // Drain as far as the parser will go; bounded by input length.
        for _ in 0..64 {
            match densekv_kv::protocol::parse_command(&mut buf) {
                Ok(densekv_kv::protocol::Parsed::Complete(_)) => {}
                Ok(densekv_kv::protocol::Parsed::Incomplete) | Err(_) => break,
            }
        }
    }

    /// The client reply parser never panics on arbitrary bytes.
    #[test]
    fn reply_parser_never_panics(input in proptest::collection::vec(any::<u8>(), 0..400)) {
        let mut buf = bytes::BytesMut::from(&input[..]);
        for _ in 0..64 {
            match densekv_kv::client::parse_reply(&mut buf) {
                Ok(Some(_)) => {}
                Ok(None) | Err(_) => break,
            }
        }
    }

    /// The full server loop survives arbitrary input bytes and always
    /// produces ASCII-framed responses.
    #[test]
    fn server_loop_survives_fuzz(input in proptest::collection::vec(any::<u8>(), 0..300)) {
        let mut store = KvStore::new(StoreConfig::with_capacity(4 << 20));
        let out = densekv_kv::server::serve_buffer(&mut store, &input, 0);
        // Any output is CRLF-framed lines (possibly with binary VALUE
        // payloads, which this fuzz can't elicit without valid sets).
        if !out.is_empty() {
            prop_assert!(out.ends_with(b"\r\n"));
        }
    }

    /// Client-built requests always round-trip the server loop: the
    /// number of replies equals the number of replied-to commands.
    #[test]
    fn builder_requests_always_parse(
        ops in proptest::collection::vec((any::<u8>(), proptest::collection::vec(any::<u8>(), 0..40)), 1..20)
    ) {
        use densekv_kv::client::{parse_reply, RequestBuilder};
        let mut store = KvStore::new(StoreConfig::with_capacity(8 << 20));
        let mut builder = RequestBuilder::new();
        for (selector, data) in &ops {
            let key = [b'k', selector % 16];
            match selector % 5 {
                0 => {
                    builder.set(&key, data, 0, 0);
                }
                1 => {
                    builder.add(&key, data, 0, 0);
                }
                2 => {
                    builder.get(&key);
                }
                3 => {
                    builder.delete(&key);
                }
                _ => {
                    builder.incr_decr(&key, u64::from(*selector), false);
                }
            }
        }
        let out = densekv_kv::server::serve_buffer(&mut store, &builder.take(), 0);
        let mut buf = bytes::BytesMut::from(&out[..]);
        let mut replies = 0;
        while let Some(_reply) = parse_reply(&mut buf).expect("server output is well-formed") {
            replies += 1;
        }
        prop_assert_eq!(replies, ops.len());
        prop_assert!(buf.is_empty(), "no trailing bytes");
    }
}

proptest! {
    /// The binary-protocol decoder and server loop never panic on
    /// arbitrary bytes.
    #[test]
    fn binary_protocol_never_panics(input in proptest::collection::vec(any::<u8>(), 0..200)) {
        let mut store = KvStore::new(StoreConfig::with_capacity(4 << 20));
        let _ = densekv_kv::binary::serve_binary(&mut store, &input, 0);
        let mut buf = bytes::BytesMut::from(&input[..]);
        let _ = densekv_kv::binary::decode_response(&mut buf);
    }

    /// Binary frames round-trip encode → decode for arbitrary contents.
    #[test]
    fn binary_frame_roundtrip(
        key in proptest::collection::vec(any::<u8>(), 0..64),
        value in proptest::collection::vec(any::<u8>(), 0..256),
        extras in proptest::collection::vec(any::<u8>(), 0..20),
        opaque in any::<u32>(),
        cas in any::<u64>(),
    ) {
        use densekv_kv::binary::{decode_request, encode_request, Frame, Opcode};
        let frame = Frame {
            opcode: Opcode::Set,
            extras,
            key,
            value,
            opaque,
            cas,
        };
        let mut wire = bytes::BytesMut::new();
        encode_request(&frame, &mut wire);
        let decoded = decode_request(&mut wire).expect("well-formed").expect("complete");
        prop_assert_eq!(decoded, frame);
        prop_assert!(wire.is_empty());
    }
}

// ---------------------------------------------------------------------
// Telemetry passivity: observing a run cannot change it
// ---------------------------------------------------------------------

proptest! {
    /// A cluster run with telemetry fully enabled is bit-identical to
    /// the same seeded run with telemetry off — same completion counts,
    /// same hit/miss split, same latency percentiles — and the metrics
    /// registry mirrors the result struct rather than diverging from it.
    #[test]
    fn telemetry_cannot_change_cluster_results(
        seed in any::<u64>(),
        load_pct in 20u64..90,
        batch in 1u64..4,
        sample_every in 1u64..64,
    ) {
        use densekv_cluster::{
            effective_capacity, run, run_with_telemetry, ClusterConfig, ClusterWorkload,
            ServiceProfile, TIMELINE_COLUMNS,
        };
        use densekv_telemetry::{Telemetry, TelemetryConfig};

        let mut config = ClusterConfig::new(ServiceProfile::synthetic(), 1.0);
        config.requests = 600;
        config.warmup = 100;
        config.seed = seed;
        let load = load_pct as f64 / 100.0;
        config.workload =
            ClusterWorkload::multigets(load * effective_capacity(&config), batch as u32);

        let dark = run(&config);
        let mut tele = Telemetry::enabled(TelemetryConfig {
            sample_every,
            timeline_interval: Duration::from_micros(250),
            timeline_columns: TIMELINE_COLUMNS.to_vec(),
        });
        let lit = run_with_telemetry(&config, &mut tele);

        prop_assert_eq!(dark.measured, lit.measured);
        prop_assert_eq!(dark.dropped, lit.dropped);
        prop_assert_eq!(dark.shard_hits, lit.shard_hits);
        prop_assert_eq!(dark.shard_misses, lit.shard_misses);
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            prop_assert_eq!(dark.latency.percentile(q), lit.latency.percentile(q));
            prop_assert_eq!(dark.shard_latency.percentile(q), lit.shard_latency.percentile(q));
        }
        prop_assert_eq!(
            tele.metrics.counter_by_name("cluster.requests"),
            Some(lit.measured)
        );
        prop_assert_eq!(
            tele.metrics.counter_by_name("cluster.shard.hits"),
            Some(lit.shard_hits)
        );
        // Sampled spans are internally consistent: phases tile the span.
        for span in tele.tracer.spans() {
            prop_assert_eq!(span.phase_sum(), span.total());
        }
    }
}

// ---------------------------------------------------------------------
// Energy passivity: metering a run cannot change it
// ---------------------------------------------------------------------

proptest! {
    /// A closed-loop core run with energy metering on is bit-identical
    /// in every performance output to the same run with metering off:
    /// the energy layer only reads counters after each execution and
    /// does arithmetic on them.
    #[test]
    fn energy_metering_cannot_change_core_results(
        seed in any::<u64>(),
        requests in 8u64..48,
        put_every in 2u64..8,
    ) {
        use densekv::energy::run_energy_observed;
        use densekv::sim::{CoreSim, CoreSimConfig};
        use densekv_telemetry::Telemetry;
        use densekv_workload::{key_bytes, Op, Request};

        let mut rng = SplitMix64::new(seed);
        let workload: Vec<Request> = (0..requests)
            .map(|i| Request {
                op: if i % put_every == 0 { Op::Put } else { Op::Get },
                key: key_bytes(rng.next_u64() % 24),
                value_bytes: 64 + (rng.next_u64() % 512),
            })
            .collect();

        let run_arm = |metered: bool| {
            let mut core = CoreSim::new(CoreSimConfig::mercury_a7()).expect("valid");
            core.preload(64, 24).expect("fits");
            let mut tele = Telemetry::disabled();
            run_energy_observed(
                &mut core,
                &workload,
                &mut tele,
                metered,
                Duration::from_micros(500),
            )
        };
        let dark = run_arm(false);
        let lit = run_arm(true);

        prop_assert_eq!(dark.requests, lit.requests);
        prop_assert_eq!(dark.elapsed, lit.elapsed);
        prop_assert_eq!(dark.latency.count(), lit.latency.count());
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            prop_assert_eq!(dark.latency.percentile(q), lit.latency.percentile(q));
        }
        // The metered arm actually measured something.
        prop_assert_eq!(dark.meter.total_j(), 0.0);
        prop_assert!(lit.meter.total_j() > 0.0);
    }

    /// A cluster run with energy accounting configured is bit-identical
    /// in every performance output to the same seeded run without it:
    /// the accounting is derived purely from event data the engine
    /// already computes.
    #[test]
    fn energy_metering_cannot_change_cluster_results(
        seed in any::<u64>(),
        load_pct in 20u64..90,
        batch in 1u64..4,
    ) {
        use densekv_cluster::{
            effective_capacity, run, ClusterConfig, ClusterEnergyModel, ClusterWorkload,
            ServiceProfile,
        };

        let mut config = ClusterConfig::new(ServiceProfile::synthetic(), 1.0);
        config.requests = 600;
        config.warmup = 100;
        config.seed = seed;
        let load = load_pct as f64 / 100.0;
        config.workload =
            ClusterWorkload::multigets(load * effective_capacity(&config), batch as u32);

        let dark = run(&config);
        config.energy = Some(ClusterEnergyModel::mercury_a7(
            config.topology.cores_per_stack,
        ));
        let lit = run(&config);

        prop_assert_eq!(dark.measured, lit.measured);
        prop_assert_eq!(dark.dropped, lit.dropped);
        prop_assert_eq!(dark.shard_hits, lit.shard_hits);
        prop_assert_eq!(dark.shard_misses, lit.shard_misses);
        prop_assert_eq!(dark.throughput_tps, lit.throughput_tps);
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            prop_assert_eq!(dark.latency.percentile(q), lit.latency.percentile(q));
            prop_assert_eq!(dark.shard_latency.percentile(q), lit.shard_latency.percentile(q));
        }
        // The metered arm actually measured something.
        prop_assert!(dark.energy.is_none());
        let energy = lit.energy.expect("energy configured");
        prop_assert!(energy.total_j() > 0.0);
    }
}

// ---------------------------------------------------------------------
// Helios hybrid tier: degenerate limits and passivity
// ---------------------------------------------------------------------

proptest! {
    /// Degenerate limit, lower end: a Helios core with a 0-byte DRAM
    /// tier is an Iridium core, bit for bit — every request timing and
    /// the device byte counter agree over arbitrary GET/PUT mixes.
    #[test]
    fn helios_zero_tier_is_iridium_bit_for_bit(
        seed in any::<u64>(),
        requests in 8u64..40,
        put_every in 2u64..6,
    ) {
        use densekv::sim::{CoreSim, CoreSimConfig};
        use densekv_workload::{key_bytes, Op, Request};

        let mut rng = SplitMix64::new(seed);
        let workload: Vec<Request> = (0..requests)
            .map(|i| Request {
                op: if i % put_every == 0 { Op::Put } else { Op::Get },
                key: key_bytes(rng.next_u64() % 24),
                value_bytes: 64 + (rng.next_u64() % 1024),
            })
            .collect();

        let mut iridium = CoreSim::new(CoreSimConfig::iridium_a7()).expect("valid");
        let mut helios = CoreSim::new(CoreSimConfig::helios_a7(0)).expect("valid");
        iridium.preload(64, 24).expect("fits");
        helios.preload(64, 24).expect("fits");
        for (i, request) in workload.iter().enumerate() {
            let a = iridium.execute(request);
            let b = helios.execute(request);
            prop_assert_eq!(a, b, "request {} diverged", i);
        }
        prop_assert_eq!(iridium.device_bytes(), helios.device_bytes());
    }

    /// Degenerate limit, upper end: with a tier larger than everything
    /// the trace touches, every re-reference to a resident page is
    /// served at exactly Mercury's closed-page DRAM line latency, and
    /// the hit/miss counters agree with a reference resident-set model.
    #[test]
    fn helios_oversized_tier_rereferences_at_dram_speed(
        lines in proptest::collection::vec(0u64..4096, 1..300)
    ) {
        use densekv_hybrid::{HybridConfig, HybridMemory};
        use densekv_mem::dram::{DramConfig, DramStack};
        use densekv_mem::{AccessKind, MemoryTiming, LINE_BYTES};

        let config = HybridConfig::helios(1 << 30, Duration::from_micros(25));
        let page_lines = config.flash.page_bytes / LINE_BYTES;
        let mut hybrid = HybridMemory::new(config.clone());
        let mut mercury = DramStack::new(DramConfig::mercury(Duration::from_nanos(10)));

        let mut resident = std::collections::HashSet::new();
        let mut hits = 0u64;
        for &line in &lines {
            let latency = hybrid.line_access(line, AccessKind::Read);
            if resident.contains(&(line / page_lines)) {
                hits += 1;
                prop_assert_eq!(latency, config.dram_line_latency());
                prop_assert_eq!(latency, mercury.line_access(line, AccessKind::Read));
            }
            resident.insert(line / page_lines);
        }
        prop_assert_eq!(hybrid.tier_hits(), hits);
        prop_assert_eq!(hybrid.tier_misses(), lines.len() as u64 - hits);
        prop_assert_eq!(hybrid.resident_pages(), resident.len() as u64);
    }

    /// A Helios core run with energy metering on is bit-identical in
    /// every performance output — and every tier counter — to the same
    /// run with metering off: per-tier pricing only reads the byte
    /// counters after each execution.
    #[test]
    fn energy_metering_cannot_change_helios_results(
        seed in any::<u64>(),
        requests in 8u64..48,
        put_every in 2u64..8,
        tier_kb in 0u64..2048,
    ) {
        use densekv::energy::run_energy_observed;
        use densekv::sim::{CoreSim, CoreSimConfig};
        use densekv_telemetry::Telemetry;
        use densekv_workload::{key_bytes, Op, Request};

        let mut rng = SplitMix64::new(seed);
        let workload: Vec<Request> = (0..requests)
            .map(|i| Request {
                op: if i % put_every == 0 { Op::Put } else { Op::Get },
                key: key_bytes(rng.next_u64() % 24),
                value_bytes: 64 + (rng.next_u64() % 512),
            })
            .collect();

        let run_arm = |metered: bool| {
            let mut core =
                CoreSim::new(CoreSimConfig::helios_a7(tier_kb << 10)).expect("valid");
            core.preload(64, 24).expect("fits");
            let mut tele = Telemetry::disabled();
            let run = run_energy_observed(
                &mut core,
                &workload,
                &mut tele,
                metered,
                Duration::from_micros(500),
            );
            (run, core.tier_stats().expect("hybrid core"), core.device_tier_bytes())
        };
        let (dark, dark_tier, dark_bytes) = run_arm(false);
        let (lit, lit_tier, lit_bytes) = run_arm(true);

        prop_assert_eq!(dark.requests, lit.requests);
        prop_assert_eq!(dark.elapsed, lit.elapsed);
        prop_assert_eq!(dark.latency.count(), lit.latency.count());
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            prop_assert_eq!(dark.latency.percentile(q), lit.latency.percentile(q));
        }
        prop_assert_eq!(dark_tier, lit_tier);
        prop_assert_eq!(dark_bytes, lit_bytes);
        // The metered arm actually measured something.
        prop_assert_eq!(dark.meter.total_j(), 0.0);
        prop_assert!(lit.meter.total_j() > 0.0);
    }
}

// ---------------------------------------------------------------------
// Parallel harness determinism (densekv-par)
// ---------------------------------------------------------------------

use densekv::experiments::{cluster, hybrid};
use densekv::sweep::{sweep_sizes, SweepEffort, SweepPoint};
use densekv::CoreSimConfig;
use densekv_par::{par_map_reduce, Jobs};

proptest! {
    /// The ordered reduction merges identically at any worker count:
    /// random histograms, random jobs, bit-equal statistics out.
    #[test]
    fn par_map_reduce_merge_matches_serial(
        samples in proptest::collection::vec(
            proptest::collection::vec(1u64..50_000_000, 1..40),
            1..24,
        ),
        jobs in 1usize..9,
    ) {
        let build = |i: usize| {
            let mut h = LatencyHistogram::new();
            for &ns in &samples[i] {
                h.record(Duration::from_nanos(ns));
            }
            h
        };
        let merge = |mut acc: LatencyHistogram, h: LatencyHistogram| {
            acc.merge(&h);
            acc
        };
        let serial =
            par_map_reduce(Jobs::SERIAL, samples.len(), build, LatencyHistogram::new(), merge);
        let par =
            par_map_reduce(Jobs::new(jobs), samples.len(), build, LatencyHistogram::new(), merge);
        prop_assert_eq!(serial.count(), par.count());
        prop_assert_eq!(serial.mean(), par.mean());
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            prop_assert_eq!(serial.percentile(q), par.percentile(q));
        }
    }
}

/// Renders a sweep to exact bits so even a last-ulp divergence between
/// the serial and parallel runs fails the comparison.
fn sweep_bits(points: &[SweepPoint]) -> String {
    points
        .iter()
        .map(|p| {
            format!(
                "{} {:016x} {:016x} {:016x} {:016x} {:016x}",
                p.value_bytes,
                p.get.tps.to_bits(),
                p.put.tps.to_bits(),
                p.get.perf.mem_gbps.to_bits(),
                p.get.perf.wire_gbps.to_bits(),
                p.get
                    .latency
                    .percentile(0.99)
                    .expect("samples")
                    .as_secs_f64()
                    .to_bits(),
            )
        })
        .collect::<Vec<_>>()
        .join("\n")
}

/// `--jobs` must never change results: the size-sweep grid is
/// bit-identical at 1 and 4 workers.
#[test]
fn sweep_grid_is_jobs_invariant() {
    let cfg = CoreSimConfig::mercury_a7();
    let serial = sweep_sizes(&cfg, SweepEffort::quick(), Jobs::SERIAL);
    let par = sweep_sizes(&cfg, SweepEffort::quick(), Jobs::new(4));
    assert_eq!(sweep_bits(&serial), sweep_bits(&par));
}

/// The hybrid tier sweep renders byte-identical CSVs at 1 and 4 workers.
#[test]
fn hybrid_sweep_is_jobs_invariant() {
    let serial = hybrid::run(SweepEffort::quick(), Jobs::SERIAL);
    let par = hybrid::run(SweepEffort::quick(), Jobs::new(4));
    assert_eq!(
        hybrid::sweep_table(&serial).to_csv(),
        hybrid::sweep_table(&par).to_csv()
    );
    assert_eq!(
        hybrid::power_table(&serial).to_csv(),
        hybrid::power_table(&par).to_csv()
    );
}

/// The cluster tail sweep renders a byte-identical CSV at 1 and 4
/// workers.
#[test]
fn cluster_tail_is_jobs_invariant() {
    let serial = cluster::cluster_tail(SweepEffort::quick(), Jobs::SERIAL);
    let par = cluster::cluster_tail(SweepEffort::quick(), Jobs::new(4));
    assert_eq!(
        cluster::tail_table(&serial).to_csv(),
        cluster::tail_table(&par).to_csv()
    );
}
