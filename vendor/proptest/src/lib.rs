//! Offline stand-in for the `proptest` crate.
//!
//! The build environment for this repository has no access to a cargo
//! registry, so the workspace vendors the API subset its property tests
//! use: the [`Strategy`] trait, `any`, ranges, tuples, `prop_map`,
//! [`collection::vec`], `prop_oneof!`, and the `proptest!` /
//! `prop_assert*` macros.
//!
//! Differences from real proptest, on purpose:
//!
//! * Inputs are drawn from a seeded SplitMix64 stream keyed on the test
//!   name, so every run of every machine sees the same cases.
//! * There is no shrinking — a failing case panics with the case index,
//!   which is enough to reproduce it deterministically.
//! * The case count defaults to 48 per test (override with the
//!   `PROPTEST_CASES` environment variable).

#![forbid(unsafe_code)]

/// The deterministic generator behind every strategy (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Returns the next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a uniform integer in `[0, bound)`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift; the tiny modulo bias is irrelevant for test
        // input generation.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

/// Derives the per-(test, case) RNG. Public for the `proptest!` macro.
#[doc(hidden)]
pub fn rng_for(test_name: &str, case: u64) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in test_name.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    TestRng::new(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Number of cases each `proptest!` test runs. Public for the macro.
#[doc(hidden)]
pub fn case_count() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(48)
}

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// Object-safe sampling, so `prop_oneof!` can mix strategy types.
#[doc(hidden)]
pub trait DynStrategy<V> {
    /// Draws one value.
    fn sample_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn DynStrategy<V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        self.as_ref().sample_dyn(rng)
    }
}

/// The [`Strategy::prop_map`] combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice between boxed strategies (built by `prop_oneof!`).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Creates a union over `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        let i = rng.next_below(self.options.len() as u64) as usize;
        self.options[i].sample_dyn(rng)
    }
}

/// Marker for types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),+) => {
        $(impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        })+
    };
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for i32 {
    #[allow(clippy::cast_possible_wrap, clippy::cast_possible_truncation)]
    fn arbitrary(rng: &mut TestRng) -> i32 {
        rng.next_u64() as i32
    }
}

impl Arbitrary for i64 {
    #[allow(clippy::cast_possible_wrap)]
    fn arbitrary(rng: &mut TestRng) -> i64 {
        rng.next_u64() as i64
    }
}

/// The strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),+) => {
        $(impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            #[allow(clippy::cast_possible_truncation)]
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = u64::from(self.end - self.start);
                self.start + rng.next_below(span) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            #[allow(clippy::cast_possible_truncation)]
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                if lo == 0 && hi == <$t>::MAX {
                    return <$t as Arbitrary>::arbitrary(rng);
                }
                let span = u64::from(hi - lo) + 1;
                lo + rng.next_below(span) as $t
            }
        })+
    };
}

impl_range_strategy!(u8, u16, u32, u64);

impl Strategy for std::ops::Range<usize> {
    type Value = usize;

    #[allow(clippy::cast_possible_truncation)]
    fn sample(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty range strategy");
        let span = (self.end - self.start) as u64;
        self.start + rng.next_below(span) as usize
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+))+) => {
        $(impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        })+
    };
}

impl_tuple_strategy! {
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// A length constraint for [`vec`]: an exact size or a half-open
    /// range, as in real proptest.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        #[allow(clippy::cast_possible_truncation)]
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.next_below(span.max(1)) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A `Vec` of values from `element`, sized within `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    pub use crate::{BoxedStrategy, Strategy};
}

/// Uniform choice among strategy arms producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+);
    };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_ne!($a, $b, $($fmt)+);
    };
}

/// Declares property tests: each `name in strategy` argument is drawn
/// fresh for every case, and the body runs once per case.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$attr:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )+) => {
        $(
            $(#[$attr])*
            fn $name() {
                let cases = $crate::case_count();
                for case in 0..cases {
                    let mut proptest_rng = $crate::rng_for(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut proptest_rng);)+
                    let run = move || $body;
                    run();
                }
            }
        )+
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let x = (10u32..20).sample(&mut rng);
            assert!((10..20).contains(&x));
        }
    }

    #[test]
    fn same_seed_same_stream() {
        let strat = collection::vec(any::<u64>(), 0..10);
        let a = strat.sample(&mut rng_for("t", 3));
        let b = strat.sample(&mut rng_for("t", 3));
        assert_eq!(a, b);
    }

    #[test]
    fn oneof_hits_every_arm() {
        let strat = prop_oneof![(0u8..1).prop_map(|_| 1u8), (0u8..1).prop_map(|_| 2u8)];
        let mut rng = TestRng::new(9);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[strat.sample(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }

    proptest! {
        #[test]
        fn macro_draws_arguments(x in 1u64..100, v in collection::vec(any::<bool>(), 2..5)) {
            prop_assert!((1..100).contains(&x));
            prop_assert!((2..5).contains(&v.len()));
        }
    }
}
