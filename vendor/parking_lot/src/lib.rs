//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment for this repository has no access to a cargo
//! registry, so the workspace vendors the *API subset it actually uses*
//! as thin wrappers over `std::sync`. Semantics match `parking_lot`'s
//! documented behavior for that subset: `lock()` returns a guard
//! directly (no `Result`), and a poisoned `std` lock is transparently
//! recovered since `parking_lot` has no poisoning.

#![forbid(unsafe_code)]

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with `parking_lot`'s panic-free `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wraps `value` in a new mutex.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    ///
    /// Unlike `std`, poisoning is ignored: `parking_lot` mutexes are not
    /// poisoned by panics, and the simulators rely on that.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A reader-writer lock with `parking_lot`'s panic-free accessors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wraps `value` in a new lock.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock and returns the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trips() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn try_lock_reports_contention() {
        let m = Mutex::new(0);
        let held = m.lock();
        assert!(m.try_lock().is_none());
        drop(held);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_round_trips() {
        let l = RwLock::new(7);
        assert_eq!(*l.read(), 7);
        *l.write() = 9;
        assert_eq!(l.into_inner(), 9);
    }
}
