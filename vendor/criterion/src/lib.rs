//! Offline stand-in for the `criterion` crate.
//!
//! The build environment for this repository has no access to a cargo
//! registry, so the workspace vendors the API subset its benches use.
//! Statistical rigor is traded for zero dependencies: each benchmark
//! warms up briefly, then runs batches of iterations until the
//! measurement window closes, and the mean per-iteration time is
//! printed. Good enough to compare orders of magnitude and catch
//! regressions by eye; not a replacement for real criterion statistics.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation attached to a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Batch sizing hint for [`Bencher::iter_batched`]; the stand-in treats
/// every variant the same.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// The benchmark driver handed to `bench_function` closures.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    /// Mean per-iteration time of the last run, in nanoseconds.
    mean_ns: f64,
    iterations: u64,
}

impl Bencher {
    /// Times `routine` repeatedly until the measurement window closes.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up window elapses.
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up {
            black_box(routine());
        }
        let mut iterations = 0u64;
        let start = Instant::now();
        while start.elapsed() < self.measurement {
            black_box(routine());
            iterations += 1;
        }
        let elapsed = start.elapsed();
        self.record(elapsed, iterations.max(1));
    }

    /// Times `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up {
            let input = setup();
            black_box(routine(input));
        }
        let mut iterations = 0u64;
        let mut measured = Duration::ZERO;
        while measured < self.measurement {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            measured += start.elapsed();
            iterations += 1;
        }
        self.record(measured, iterations.max(1));
    }

    /// Hands iteration counting to the routine: `routine(n)` must run
    /// the workload `n` times and return the elapsed time.
    pub fn iter_custom<R: FnMut(u64) -> Duration>(&mut self, mut routine: R) {
        black_box(routine(1)); // warm-up
        let mut iterations = 16u64;
        let mut elapsed = routine(iterations);
        while elapsed < self.measurement && iterations < 1 << 20 {
            iterations *= 4;
            elapsed = routine(iterations);
        }
        self.record(elapsed, iterations);
    }

    fn record(&mut self, elapsed: Duration, iterations: u64) {
        self.mean_ns = elapsed.as_nanos() as f64 / iterations as f64;
        self.iterations = iterations;
    }
}

/// Shared knobs for a set of benchmarks.
#[derive(Debug, Clone)]
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_millis(200),
            measurement: Duration::from_millis(500),
            sample_size: 100,
        }
    }
}

impl Criterion {
    /// Sets the warm-up window.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Sets the measurement window.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Sets the nominal sample count (scales the window in the stand-in).
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            scale: 1.0,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let group_name = name.to_string();
        self.benchmark_group(group_name).bench_function("", f);
        self
    }
}

/// A named group of benchmarks sharing throughput/sizing settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    scale: f64,
}

impl BenchmarkGroup<'_> {
    /// Annotates per-iteration throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Adjusts the nominal sample count; the stand-in scales its
    /// measurement window proportionally so cheap groups stay cheap.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.scale = (n as f64 / 100.0).clamp(0.05, 1.0);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut bencher = Bencher {
            warm_up: self.criterion.warm_up.mul_f64(self.scale),
            measurement: self.criterion.measurement.mul_f64(self.scale),
            mean_ns: 0.0,
            iterations: 0,
        };
        f(&mut bencher);
        let label = if id.is_empty() {
            self.name.clone()
        } else {
            format!("{}/{}", self.name, id)
        };
        let mut line = format!(
            "{label:<48} {:>12.1} ns/iter ({} iters)",
            bencher.mean_ns, bencher.iterations
        );
        if bencher.mean_ns > 0.0 {
            match self.throughput {
                Some(Throughput::Bytes(n)) => {
                    let gib = n as f64 / bencher.mean_ns; // bytes/ns == GB/s
                    line.push_str(&format!("  {gib:>8.3} GB/s"));
                }
                Some(Throughput::Elements(n)) => {
                    let meps = n as f64 * 1e3 / bencher.mean_ns;
                    line.push_str(&format!("  {meps:>8.3} Melem/s"));
                }
                None => {}
            }
        }
        println!("{line}");
        self
    }

    /// Ends the group (printing is immediate, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// Declares a benchmark group entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> Criterion {
        Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
    }

    #[test]
    fn iter_measures_something() {
        let mut c = config();
        let mut group = c.benchmark_group("t");
        group.throughput(Throughput::Elements(1));
        group.bench_function("iter", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
    }

    #[test]
    fn iter_batched_and_custom_run() {
        let mut c = config();
        let mut group = c.benchmark_group("t");
        group.sample_size(10);
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![0u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        group.bench_function("custom", |b| {
            b.iter_custom(|iters| {
                let start = Instant::now();
                for _ in 0..iters {
                    black_box(2 * 2);
                }
                start.elapsed()
            })
        });
    }

    criterion_group!(simple_form, noop_bench);

    fn noop_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1));
    }

    #[test]
    fn group_macro_compiles() {
        // Both macro forms must expand; running the simple form exercises
        // the default config path.
        let _ = simple_form;
    }
}
