//! Offline stand-in for the `bytes` crate.
//!
//! The build environment for this repository has no access to a cargo
//! registry, so the workspace vendors the API subset it actually uses.
//! `Bytes` and `BytesMut` are plain `Vec<u8>` wrappers: correct and
//! deterministic, without the real crate's zero-copy reference counting
//! (which only matters for performance, not for the protocol logic and
//! simulators built on top).

#![forbid(unsafe_code)]

use std::ops::{Deref, DerefMut};

/// An immutable byte buffer.
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: data.to_vec(),
        }
    }

    /// Wraps a static slice (copied here; the real crate borrows it).
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes::copy_from_slice(data)
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes::copy_from_slice(data)
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in &self.data {
            write!(f, "{}", b.escape_ascii())?;
        }
        write!(f, "\"")
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.data == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.data == *other
    }
}

/// A growable byte buffer with efficient-front-removal semantics.
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty buffer with at least `cap` bytes of capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Reserves capacity for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    /// Appends `extend` to the buffer.
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.data.extend_from_slice(extend);
    }

    /// Removes and returns the first `at` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `at > len`.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.data.len(), "split_to out of bounds");
        let rest = self.data.split_off(at);
        BytesMut {
            data: std::mem::replace(&mut self.data, rest),
        }
    }

    /// Removes and returns the entire contents, leaving the buffer empty.
    pub fn split(&mut self) -> BytesMut {
        let len = self.data.len();
        self.split_to(len)
    }

    /// Converts the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }

    /// Clears the buffer.
    pub fn clear(&mut self) {
        self.data.clear();
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<&[u8]> for BytesMut {
    fn from(data: &[u8]) -> Self {
        BytesMut {
            data: data.to_vec(),
        }
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(data: Vec<u8>) -> Self {
        BytesMut { data }
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in &self.data {
            write!(f, "{}", b.escape_ascii())?;
        }
        write!(f, "\"")
    }
}

/// Read access to a byte cursor.
pub trait Buf {
    /// Bytes remaining to read.
    fn remaining(&self) -> usize;

    /// The current unread region.
    fn chunk(&self) -> &[u8];

    /// Advances the cursor past `cnt` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `cnt > remaining()`.
    fn advance(&mut self, cnt: usize);

    /// True if any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte, big-endian (trivially).
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let v = u16::from_be_bytes(self.chunk()[..2].try_into().expect("2 bytes"));
        self.advance(2);
        v
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let v = u32::from_be_bytes(self.chunk()[..4].try_into().expect("4 bytes"));
        self.advance(4);
        v
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let v = u64::from_be_bytes(self.chunk()[..8].try_into().expect("8 bytes"));
        self.advance(8);
        v
    }

    /// Copies `dst.len()` bytes out and advances past them.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        let n = dst.len();
        self.advance(n);
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.data.len()
    }

    fn chunk(&self) -> &[u8] {
        &self.data
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.data.len(), "advance out of bounds");
        self.data.drain(..cnt);
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write access to a growable byte sink.
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_to_partitions() {
        let mut b = BytesMut::from(&b"hello world"[..]);
        let head = b.split_to(5);
        assert_eq!(&head[..], b"hello");
        assert_eq!(&b[..], b" world");
    }

    #[test]
    fn split_takes_everything() {
        let mut b = BytesMut::from(&b"abc"[..]);
        let all = b.split();
        assert_eq!(&all[..], b"abc");
        assert!(b.is_empty());
    }

    #[test]
    fn put_and_get_round_trip() {
        let mut b = BytesMut::new();
        b.put_u8(1);
        b.put_u16(2);
        b.put_u32(3);
        b.put_u64(4);
        b.put_slice(b"xy");
        assert_eq!(b.remaining(), 1 + 2 + 4 + 8 + 2);
        assert_eq!(b.get_u8(), 1);
        assert_eq!(b.get_u16(), 2);
        assert_eq!(b.get_u32(), 3);
        assert_eq!(b.get_u64(), 4);
        let mut out = [0u8; 2];
        b.copy_to_slice(&mut out);
        assert_eq!(&out, b"xy");
        assert!(!b.has_remaining());
    }

    #[test]
    fn advance_drops_front() {
        let mut b = BytesMut::from(&b"abcdef"[..]);
        Buf::advance(&mut b, 2);
        assert_eq!(&b[..], b"cdef");
        let mut s: &[u8] = b"abcdef";
        s.advance(3);
        assert_eq!(s, b"def");
    }

    #[test]
    fn freeze_preserves_contents() {
        let mut b = BytesMut::new();
        b.extend_from_slice(b"data");
        let frozen = b.freeze();
        assert_eq!(frozen, b"data"[..]);
        assert_eq!(Bytes::copy_from_slice(b"data"), frozen);
    }

    #[test]
    #[should_panic(expected = "split_to out of bounds")]
    fn split_past_end_panics() {
        let mut b = BytesMut::from(&b"ab"[..]);
        let _ = b.split_to(3);
    }
}
